package mds

import (
	"strings"
	"testing"

	"mantle/internal/balancer"
	"mantle/internal/namespace"
	"mantle/internal/rados"
	"mantle/internal/sim"
	"mantle/internal/simnet"
)

// harness wires N MDS ranks plus a recording client endpoint.
type harness struct {
	engine  *sim.Engine
	net     *simnet.Network
	ns      *namespace.Namespace
	mdss    []*MDS
	client  simnet.Addr
	replies []*Reply
	flushes int
	nextID  uint64
}

func newHarness(t *testing.T, n int, bal func() balancer.Balancer, tune func(*Config)) *harness {
	t.Helper()
	h := &harness{
		engine: sim.NewEngine(1),
		ns:     namespace.New(10 * sim.Second),
		client: simnet.Addr(9999),
	}
	h.net = simnet.New(h.engine, simnet.Config{Latency: 100 * sim.Microsecond})
	rc := rados.NewCluster(h.engine, rados.Config{OSDs: 4, PGs: 32, Replicas: 2, WriteLatency: 200, ReadLatency: 100})
	cfg := DefaultConfig()
	cfg.SvcJitterPct = 0 // deterministic service times for unit tests
	if tune != nil {
		tune(&cfg)
	}
	var addrs []simnet.Addr
	for r := 0; r < n; r++ {
		addrs = append(addrs, simnet.Addr(r))
	}
	for r := 0; r < n; r++ {
		m := New(namespace.Rank(r), addrs[r], h.engine, h.net, h.ns, rc.Pool("meta"), cfg, bal(), addrs)
		h.mdss = append(h.mdss, m)
	}
	h.net.Register(h.client, simnet.HandlerFunc(func(from simnet.Addr, msg simnet.Message) {
		switch v := msg.(type) {
		case *Reply:
			h.replies = append(h.replies, v)
		case *SessionFlush:
			h.flushes++
		}
	}))
	return h
}

// do sends a request to rank and runs the engine to idle.
func (h *harness) do(rank int, op OpType, path string, dst ...string) *Reply {
	h.nextID++
	req := &Request{ID: h.nextID, Client: h.client, Op: op, Path: path, IssuedAt: h.engine.Now()}
	if len(dst) > 0 {
		req.DstPath = dst[0]
	}
	h.net.Send(h.client, simnet.Addr(rank), req)
	h.engine.RunUntilIdle()
	if len(h.replies) == 0 {
		return nil
	}
	return h.replies[len(h.replies)-1]
}

func noBal() balancer.Balancer { return balancer.NoBalancer{} }

func TestCreateAndStat(t *testing.T) {
	h := newHarness(t, 1, noBal, nil)
	if rep := h.do(0, OpMkdir, "/a"); rep.Err != "" {
		t.Fatalf("mkdir: %s", rep.Err)
	}
	if rep := h.do(0, OpCreate, "/a/f"); rep.Err != "" {
		t.Fatalf("create: %s", rep.Err)
	}
	if rep := h.do(0, OpGetattr, "/a/f"); rep.Err != "" {
		t.Fatalf("getattr: %s", rep.Err)
	}
	if rep := h.do(0, OpReaddir, "/a"); rep.Err != "" {
		t.Fatalf("readdir: %s", rep.Err)
	}
	n, err := h.ns.Resolve("/a/f")
	if err != nil || n.IsDir() {
		t.Fatalf("resolve: %v %v", n, err)
	}
	c := h.mdss[0].Counters
	if c.Served != 4 || c.Hits != 4 || c.Forwards != 0 || c.Errors != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestErrorReplies(t *testing.T) {
	h := newHarness(t, 1, noBal, nil)
	if rep := h.do(0, OpGetattr, "/missing"); rep.Err == "" {
		t.Fatal("stat of missing path should fail")
	}
	if rep := h.do(0, OpCreate, "/nodir/f"); rep.Err == "" {
		t.Fatal("create in missing dir should fail")
	}
	h.do(0, OpMkdir, "/a")
	if rep := h.do(0, OpMkdir, "/a"); rep.Err == "" {
		t.Fatal("duplicate mkdir should fail")
	}
	if rep := h.do(0, OpUnlink, "/a/none"); rep.Err == "" {
		t.Fatal("unlink missing should fail")
	}
	if h.mdss[0].Counters.Errors != 4 {
		t.Fatalf("errors = %d", h.mdss[0].Counters.Errors)
	}
}

func TestRenameAndUnlink(t *testing.T) {
	h := newHarness(t, 1, noBal, nil)
	h.do(0, OpMkdir, "/a")
	h.do(0, OpMkdir, "/b")
	h.do(0, OpCreate, "/a/f")
	if rep := h.do(0, OpRename, "/a/f", "/b/g"); rep.Err != "" {
		t.Fatalf("rename: %s", rep.Err)
	}
	if _, err := h.ns.Resolve("/b/g"); err != nil {
		t.Fatal("rename target missing")
	}
	if rep := h.do(0, OpUnlink, "/b/g"); rep.Err != "" {
		t.Fatalf("unlink: %s", rep.Err)
	}
	if _, err := h.ns.Resolve("/b/g"); err == nil {
		t.Fatal("unlinked file still present")
	}
}

func TestForwardToAuthority(t *testing.T) {
	h := newHarness(t, 2, noBal, nil)
	h.do(0, OpMkdir, "/theirs")
	d, _ := h.ns.Resolve("/theirs")
	h.ns.SetAuthOverride(d, 1)
	// Request sent to rank 0 must be forwarded to rank 1 and succeed.
	rep := h.do(0, OpCreate, "/theirs/f")
	if rep.Err != "" {
		t.Fatalf("create: %s", rep.Err)
	}
	if rep.Served != 1 {
		t.Fatalf("served by %d, want 1", rep.Served)
	}
	if rep.Forwards != 1 {
		t.Fatalf("forwards = %d", rep.Forwards)
	}
	if h.mdss[0].Counters.Forwards != 1 || h.mdss[1].Counters.Hits != 1 {
		t.Fatalf("counters: m0=%+v m1=%+v", h.mdss[0].Counters, h.mdss[1].Counters)
	}
	// Reply hints teach the client the subtree authority.
	found := false
	for _, hint := range rep.Hints {
		if hint.DirPath == "/theirs" && hint.Rank == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("hints = %+v", rep.Hints)
	}
}

func TestHintForSubtreeTop(t *testing.T) {
	h := newHarness(t, 2, noBal, nil)
	h.do(0, OpMkdir, "/a")
	h.do(0, OpMkdir, "/a/b")
	h.do(0, OpMkdir, "/a/b/c")
	a, _ := h.ns.Resolve("/a")
	h.ns.SetAuthOverride(a, 1)
	rep := h.do(1, OpCreate, "/a/b/c/f")
	if rep.Err != "" {
		t.Fatal(rep.Err)
	}
	// The hint should name the subtree top /a, not the leaf dir.
	var got Hint
	for _, hint := range rep.Hints {
		got = hint
	}
	if got.DirPath != "/a" || got.Rank != 1 {
		t.Fatalf("hint = %+v", got)
	}
}

func TestFrozenRequestsDeferredAndReplayed(t *testing.T) {
	h := newHarness(t, 1, noBal, nil)
	h.do(0, OpMkdir, "/a")
	d, _ := h.ns.Resolve("/a")
	h.ns.Freeze(d, true)
	// Issue a create; it parks.
	h.nextID++
	h.net.Send(h.client, simnet.Addr(0), &Request{ID: h.nextID, Client: h.client, Op: OpCreate, Path: "/a/f"})
	h.engine.RunUntilIdle()
	if got := len(h.replies); got != 1 { // only the mkdir reply so far
		t.Fatalf("replies = %d", got)
	}
	if h.mdss[0].Counters.Deferred != 1 {
		t.Fatalf("deferred = %d", h.mdss[0].Counters.Deferred)
	}
	// Unfreeze and replay.
	h.ns.Freeze(d, false)
	h.mdss[0].retryDeferred()
	h.engine.RunUntilIdle()
	if len(h.replies) != 2 || h.replies[1].Err != "" {
		t.Fatalf("replies = %+v", h.replies)
	}
}

func TestSvcTimeReaddirScalesAndCaps(t *testing.T) {
	h := newHarness(t, 1, noBal, nil)
	m := h.mdss[0]
	h.do(0, OpMkdir, "/d")
	d, _ := h.ns.Resolve("/d")
	small := m.svcTime(&Request{Op: OpReaddir}, resolved{dir: d})
	for i := 0; i < 100000; i++ {
		h.ns.Create(d, nameOf(i), false)
	}
	big := m.svcTime(&Request{Op: OpReaddir}, resolved{dir: d})
	if big <= small {
		t.Fatalf("readdir svc did not scale: %v vs %v", small, big)
	}
	if big > m.cfg.ReaddirMaxSvc {
		t.Fatalf("readdir svc %v above cap", big)
	}
}

func nameOf(i int) string {
	const digits = "0123456789"
	buf := [8]byte{'f', '0', '0', '0', '0', '0', '0', '0'}
	for p := 7; i > 0 && p > 0; p-- {
		buf[p] = digits[i%10]
		i /= 10
	}
	return string(buf[:])
}

func TestDirfragSplitOnThreshold(t *testing.T) {
	h := newHarness(t, 1, noBal, func(c *Config) { c.SplitSize = 100; c.SplitBits = 2 })
	h.do(0, OpMkdir, "/d")
	for i := 0; i < 150; i++ {
		if rep := h.do(0, OpCreate, "/d/"+nameOf(i)); rep.Err != "" {
			t.Fatal(rep.Err)
		}
	}
	d, _ := h.ns.Resolve("/d")
	if d.FragTree().NumLeaves() != 4 {
		t.Fatalf("leaves = %d", d.FragTree().NumLeaves())
	}
	if h.mdss[0].Counters.Splits != 1 {
		t.Fatalf("splits = %d", h.mdss[0].Counters.Splits)
	}
}

func TestMigrationProtocolEndToEnd(t *testing.T) {
	h := newHarness(t, 2, noBal, nil)
	h.do(0, OpMkdir, "/move")
	for i := 0; i < 20; i++ {
		h.do(0, OpCreate, "/move/"+nameOf(i))
	}
	d, _ := h.ns.Resolve("/move")
	m0 := h.mdss[0]
	unit := exportUnit{dir: d, load: 10}
	m0.startExport(unit, 1)
	// Mid-migration, the subtree is frozen.
	if !d.Frozen() {
		t.Fatal("unit not frozen at export start")
	}
	h.engine.RunUntilIdle()
	// Authority moved, freeze lifted, counters updated.
	if got := h.ns.EffectiveAuth(d); got != 1 {
		t.Fatalf("auth = %d", got)
	}
	if d.Frozen() {
		t.Fatal("still frozen after commit")
	}
	if m0.Counters.Exports != 1 || h.mdss[1].Counters.Imports != 1 {
		t.Fatalf("export/import counters: %d/%d", m0.Counters.Exports, h.mdss[1].Counters.Imports)
	}
	if m0.Counters.InodesMoved != 21 {
		t.Fatalf("inodes moved = %d", m0.Counters.InodesMoved)
	}
	// The client had a session with the exporter → one flush.
	if h.flushes != 1 || m0.Counters.SessionsSent != 1 {
		t.Fatalf("flushes = %d, sent = %d", h.flushes, m0.Counters.SessionsSent)
	}
	// Both sides journaled the 2PC.
	if m0.Journal().Flushed() == 0 || h.mdss[1].Journal().Flushed() == 0 {
		t.Fatal("missing journal entries")
	}
	// Requests during the freeze are deferred, then served by the importer.
	before := len(h.replies)
	h.mdss[1].startExport(exportUnit{dir: d, load: 1}, 0) // move it back
	h.nextID++
	h.net.Send(h.client, simnet.Addr(1), &Request{ID: h.nextID, Client: h.client, Op: OpCreate, Path: "/move/xx"})
	h.engine.RunUntilIdle()
	if len(h.replies) != before+1 {
		t.Fatalf("deferred request never replied")
	}
	last := h.replies[len(h.replies)-1]
	if last.Err != "" {
		t.Fatalf("deferred create failed: %s", last.Err)
	}
	if got := h.ns.EffectiveAuth(d); got != 0 {
		t.Fatalf("auth after move-back = %d", got)
	}
}

func TestFragMigration(t *testing.T) {
	h := newHarness(t, 2, noBal, func(c *Config) { c.SplitSize = 50; c.SplitBits = 1 })
	h.do(0, OpMkdir, "/d")
	for i := 0; i < 60; i++ {
		h.do(0, OpCreate, "/d/"+nameOf(i))
	}
	d, _ := h.ns.Resolve("/d")
	leaves := d.FragTree().Leaves()
	if len(leaves) < 2 {
		t.Fatalf("leaves = %d", len(leaves))
	}
	fs, _ := d.FragStateOf(leaves[0])
	m0 := h.mdss[0]
	m0.startExport(exportUnit{dir: d, frag: leaves[0], isFrag: true, load: 5}, 1)
	if !fs.Frozen() {
		t.Fatal("frag not frozen")
	}
	h.engine.RunUntilIdle()
	if fs.Auth() != 1 {
		t.Fatalf("frag auth = %d", fs.Auth())
	}
	if fs.Frozen() {
		t.Fatal("frag still frozen")
	}
	// A dentry in the migrated frag now routes to rank 1.
	var inFrag string
	for i := 0; i < 60; i++ {
		if leaves[0].ContainsName(nameOf(i)) {
			inFrag = nameOf(i)
			break
		}
	}
	rep := h.do(0, OpGetattr, "/d/"+inFrag)
	if rep.Served != 1 || rep.Forwards != 1 {
		t.Fatalf("served=%d forwards=%d", rep.Served, rep.Forwards)
	}
	// Frag-split authority produces fragment hints.
	hasFragHint := false
	for _, hint := range rep.Hints {
		if len(hint.Frags) > 0 && hint.DirPath == "/d" {
			hasFragHint = true
		}
	}
	if !hasFragHint {
		t.Fatalf("hints = %+v", rep.Hints)
	}
}

func TestHeartbeatTickAndRebalanceWithCephFS(t *testing.T) {
	h := newHarness(t, 2, func() balancer.Balancer { return balancer.NewCephFS() },
		func(c *Config) {
			c.HeartbeatInterval = 500 * sim.Millisecond
			c.RebalanceDelay = 100 * sim.Millisecond
		})
	// Build load first (RunUntilIdle would never return once tickers
	// run), then start the balancer tickers. Load lives in three
	// directories: a single unfragmented flat directory is not divisible
	// (CephFS moves its dirfrags only after a split), so give the
	// balancer subtree-sized units to work with.
	for d := 0; d < 3; d++ {
		dir := "/hot" + string(rune('0'+d))
		h.do(0, OpMkdir, dir)
		for i := 0; i < 150; i++ {
			h.do(0, OpCreate, dir+"/"+nameOf(i))
		}
	}
	for _, m := range h.mdss {
		m.Start()
	}
	// Let ticks fire: run for a few simulated seconds.
	h.engine.Run(h.engine.Now() + 3*sim.Second)
	for _, m := range h.mdss {
		m.Stop()
	}
	if h.mdss[0].Counters.HBsSent == 0 || h.mdss[1].Counters.HBsRecv == 0 {
		t.Fatal("heartbeats did not flow")
	}
	// CephFS policy on a loaded rank 0 vs idle rank 1 must have exported.
	if h.mdss[0].Counters.Exports == 0 {
		t.Fatal("no exports despite full imbalance")
	}
}

func TestTooManyForwardsFails(t *testing.T) {
	h := newHarness(t, 2, noBal, nil)
	h.do(0, OpMkdir, "/a")
	req := &Request{ID: 77, Client: h.client, Op: OpCreate, Path: "/a/f", Hops: 17}
	d, _ := h.ns.Resolve("/a")
	h.ns.SetAuthOverride(d, 1)
	h.net.Send(h.client, simnet.Addr(0), req)
	h.engine.RunUntilIdle()
	last := h.replies[len(h.replies)-1]
	if last.Err == "" || !strings.Contains(last.Err, "forwards") {
		t.Fatalf("reply = %+v", last)
	}
}

func TestCPUWindowMeasurement(t *testing.T) {
	h := newHarness(t, 1, noBal, func(c *Config) { c.CPUNoise = 0 })
	m := h.mdss[0]
	h.do(0, OpMkdir, "/a")
	// Saturate the server for ~2 windows.
	for i := 0; i < 6000; i++ {
		h.nextID++
		h.net.Send(h.client, simnet.Addr(0), &Request{ID: h.nextID, Client: h.client, Op: OpCreate, Path: "/a/" + nameOf(i)})
	}
	h.engine.RunUntilIdle()
	m.rollWindows()
	// After the burst the last full window should show high utilisation
	// at some point; check req rate accounting instead (stable):
	if m.Counters.Served != 6001 {
		t.Fatalf("served = %d", m.Counters.Served)
	}
	if got := m.cpuSample(); got < 0 || got > 100 {
		t.Fatalf("cpu sample out of range: %v", got)
	}
	if m.memSample() <= 0 {
		t.Fatal("mem sample should be positive with cached inodes")
	}
}

func TestOpTypeStringsAndMutating(t *testing.T) {
	ops := map[OpType]string{
		OpCreate: "create", OpMkdir: "mkdir", OpGetattr: "getattr",
		OpLookup: "lookup", OpOpen: "open", OpReaddir: "readdir",
		OpUnlink: "unlink", OpRename: "rename", OpSetattr: "setattr",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%d.String() = %q", op, op.String())
		}
	}
	if !OpCreate.Mutating() || OpGetattr.Mutating() || !OpRename.Mutating() {
		t.Fatal("Mutating misclassifies")
	}
	if OpType(99).String() == "" {
		t.Fatal("unknown op string empty")
	}
}

func TestExportUnitHelpers(t *testing.T) {
	h := newHarness(t, 1, noBal, nil)
	h.do(0, OpMkdir, "/u")
	h.do(0, OpCreate, "/u/f")
	d, _ := h.ns.Resolve("/u")
	u := exportUnit{dir: d}
	if u.path() != "/u" || u.nodeCount() != 2 {
		t.Fatalf("path=%q nodes=%d", u.path(), u.nodeCount())
	}
	uf := exportUnit{dir: d, frag: namespace.RootFrag, isFrag: true}
	if uf.nodeCount() != 2 { // 1 entry + 1
		t.Fatalf("frag nodes = %d", uf.nodeCount())
	}
	if !strings.Contains(uf.path(), "#") {
		t.Fatalf("frag path = %q", uf.path())
	}
}

func TestDirfragMergeOnShrink(t *testing.T) {
	h := newHarness(t, 1, noBal, func(c *Config) {
		c.SplitSize = 100
		c.SplitBits = 2
		c.MergeSize = 40
	})
	h.do(0, OpMkdir, "/d")
	for i := 0; i < 120; i++ {
		h.do(0, OpCreate, "/d/"+nameOf(i))
	}
	d, _ := h.ns.Resolve("/d")
	if d.FragTree().NumLeaves() != 4 {
		t.Fatalf("leaves = %d", d.FragTree().NumLeaves())
	}
	// Unlink down to below the merge threshold.
	for i := 0; i < 90; i++ {
		if rep := h.do(0, OpUnlink, "/d/"+nameOf(i)); rep.Err != "" {
			t.Fatal(rep.Err)
		}
	}
	if d.FragTree().NumLeaves() != 1 {
		t.Fatalf("leaves after shrink = %d, want merged to 1", d.FragTree().NumLeaves())
	}
	if h.mdss[0].Counters.Merges == 0 {
		t.Fatal("merge counter not bumped")
	}
	fs, _ := d.FragStateOf(namespace.RootFrag)
	if fs.Entries != 30 {
		t.Fatalf("entries = %d, want 30", fs.Entries)
	}
	// Creates keep working after the merge.
	if rep := h.do(0, OpCreate, "/d/postmerge"); rep.Err != "" {
		t.Fatal(rep.Err)
	}
}

func TestColdDirfragFetchUnderPressure(t *testing.T) {
	h := newHarness(t, 1, noBal, func(c *Config) {
		c.CacheCapacity = 10 // force pressure immediately
		c.CacheCoolTime = 1 * sim.Second
		c.FetchSvc = 500 * sim.Microsecond
	})
	h.do(0, OpMkdir, "/d")
	for i := 0; i < 30; i++ {
		h.do(0, OpCreate, "/d/"+nameOf(i))
	}
	base := h.mdss[0].Counters.Fetches
	// Let the frag go cold, then touch it: one fetch.
	h.engine.Run(h.engine.Now() + 5*sim.Second)
	rep := h.do(0, OpGetattr, "/d/"+nameOf(0))
	if rep.Err != "" {
		t.Fatal(rep.Err)
	}
	if h.mdss[0].Counters.Fetches != base+1 {
		t.Fatalf("fetches = %d, want %d", h.mdss[0].Counters.Fetches, base+1)
	}
	// Immediately touching again is warm: no new fetch.
	h.do(0, OpGetattr, "/d/"+nameOf(0))
	if h.mdss[0].Counters.Fetches != base+1 {
		t.Fatal("warm frag fetched again")
	}
	// The FETCH counter feeds the metaload formula.
	d, _ := h.ns.Resolve("/d")
	if d.Load(h.engine.Now()).Fetch <= 0 {
		t.Fatal("FETCH heat not recorded")
	}
}

func TestNoFetchWithoutPressure(t *testing.T) {
	h := newHarness(t, 1, noBal, func(c *Config) {
		c.CacheCapacity = 1_000_000
		c.CacheCoolTime = sim.Second
	})
	h.do(0, OpMkdir, "/d")
	h.do(0, OpCreate, "/d/f0000001")
	h.engine.Run(h.engine.Now() + 10*sim.Second)
	h.do(0, OpGetattr, "/d/f0000001")
	if h.mdss[0].Counters.Fetches != 0 {
		t.Fatalf("fetches = %d under no pressure", h.mdss[0].Counters.Fetches)
	}
}

// buildHotTree creates /top with nDirs child dirs, each carrying heat.
func buildHotTree(h *harness, nDirs, filesPer int) {
	h.do(0, OpMkdir, "/top")
	for d := 0; d < nDirs; d++ {
		dir := "/top/d" + string(rune('a'+d))
		h.do(0, OpMkdir, dir)
		for f := 0; f < filesPer; f++ {
			h.do(0, OpCreate, dir+"/"+nameOf(f))
		}
	}
}

func TestInitialUnitsExpandRootChildren(t *testing.T) {
	h := newHarness(t, 2, noBal, nil)
	buildHotTree(h, 3, 20)
	units := h.mdss[0].initialUnits()
	// Root "/" expands to its child dirs: /top only.
	if len(units) != 1 || units[0].dir.Path() != "/top" {
		t.Fatalf("units = %d", len(units))
	}
	if units[0].load <= 0 {
		t.Fatal("unit load not computed")
	}
	// A non-root subtree root is itself a unit.
	top, _ := h.ns.Resolve("/top/da")
	h.ns.SetAuthOverride(top, 1)
	units1 := h.mdss[1].initialUnits()
	if len(units1) != 1 || units1[0].dir != top {
		t.Fatalf("rank1 units = %v", len(units1))
	}
}

func TestInitialUnitsFragRoots(t *testing.T) {
	h := newHarness(t, 2, noBal, func(c *Config) { c.SplitSize = 30; c.SplitBits = 1 })
	h.do(0, OpMkdir, "/d")
	for i := 0; i < 50; i++ {
		h.do(0, OpCreate, "/d/"+nameOf(i))
	}
	d, _ := h.ns.Resolve("/d")
	leaves := d.FragTree().Leaves()
	h.ns.SetFragAuth(d, leaves[0], 1)
	units := h.mdss[1].initialUnits()
	if len(units) != 1 || !units[0].isFrag || units[0].frag != leaves[0] {
		t.Fatalf("rank1 frag units = %+v", units)
	}
	// Frozen frag roots are skipped.
	h.ns.FreezeFrag(d, leaves[0], true)
	if got := h.mdss[1].initialUnits(); len(got) != 0 {
		t.Fatalf("frozen frag offered: %v", got)
	}
}

func TestDivisibleAndExpand(t *testing.T) {
	h := newHarness(t, 1, noBal, func(c *Config) { c.SplitSize = 30; c.SplitBits = 2 })
	m := h.mdss[0]
	// A dir of files only, unfragmented: not divisible.
	h.do(0, OpMkdir, "/flat")
	for i := 0; i < 10; i++ {
		h.do(0, OpCreate, "/flat/"+nameOf(i))
	}
	flat, _ := h.ns.Resolve("/flat")
	if m.divisible(exportUnit{dir: flat}) {
		t.Fatal("flat dir divisible")
	}
	// With a subdirectory it is divisible into child dirs.
	h.do(0, OpMkdir, "/flat/sub")
	if !m.divisible(exportUnit{dir: flat}) {
		t.Fatal("dir with subdir not divisible")
	}
	exp := m.expandDir(flat)
	if len(exp) != 1 || exp[0].dir.Path() != "/flat/sub" {
		t.Fatalf("expand = %v", exp)
	}
	// A fragmented dir expands into its owned frags.
	h.do(0, OpMkdir, "/big")
	for i := 0; i < 40; i++ {
		h.do(0, OpCreate, "/big/"+nameOf(i))
	}
	big, _ := h.ns.Resolve("/big")
	if big.FragTree().NumLeaves() != 4 {
		t.Fatalf("leaves = %d", big.FragTree().NumLeaves())
	}
	if !m.divisible(exportUnit{dir: big}) {
		t.Fatal("fragmented dir not divisible")
	}
	fragUnits := m.expandDir(big)
	if len(fragUnits) != 4 {
		t.Fatalf("frag units = %d", len(fragUnits))
	}
	for _, u := range fragUnits {
		if !u.isFrag {
			t.Fatal("expected frag units")
		}
	}
}

func TestSelectExportsDrillsIntoHotDir(t *testing.T) {
	h := newHarness(t, 2, noBal, func(c *Config) { c.SplitSize = 40; c.SplitBits = 2 })
	h.do(0, OpMkdir, "/hot")
	for i := 0; i < 60; i++ {
		h.do(0, OpCreate, "/hot/"+nameOf(i))
	}
	m := h.mdss[0]
	hot, _ := h.ns.Resolve("/hot")
	total := m.metaLoadOf(hot.Load(h.engine.Now()))
	// Ask for a quarter of the load: the whole dir overshoots, so the
	// selection must drill into dirfrags.
	units := m.selectExports(total/4, []string{"big_first"})
	if len(units) == 0 {
		t.Fatal("nothing selected")
	}
	for _, u := range units {
		if !u.isFrag {
			t.Fatalf("expected dirfrag selection, got %s", u.path())
		}
	}
	shipped := 0.0
	for _, u := range units {
		shipped += u.load
	}
	if shipped > total/4*m.cfg.OvershootFactor+1 {
		t.Fatalf("shipped %v far above target %v", shipped, total/4)
	}
}

func TestSelectExportsSkipsIndivisibleGiant(t *testing.T) {
	h := newHarness(t, 2, noBal, nil) // default split size: dir stays unfragmented
	h.do(0, OpMkdir, "/giant")
	for i := 0; i < 200; i++ {
		h.do(0, OpCreate, "/giant/"+nameOf(i))
	}
	m := h.mdss[0]
	giant, _ := h.ns.Resolve("/giant")
	total := m.metaLoadOf(giant.Load(h.engine.Now()))
	units := m.selectExports(total/10, []string{"big_first"})
	if len(units) != 0 {
		t.Fatalf("selected %d units; a flat dir 10x the target must be skipped", len(units))
	}
}

func TestSelectExportsTakesWholeSubtreesWhenSized(t *testing.T) {
	h := newHarness(t, 2, noBal, nil)
	buildHotTree(h, 4, 25) // four roughly equal subtrees
	m := h.mdss[0]
	top, _ := h.ns.Resolve("/top")
	total := m.metaLoadOf(top.Load(h.engine.Now()))
	units := m.selectExports(total/2, []string{"big_first"})
	if len(units) < 1 {
		t.Fatal("nothing selected")
	}
	for _, u := range units {
		if u.isFrag {
			t.Fatal("expected whole-directory units")
		}
	}
}

func TestAccessors(t *testing.T) {
	h := newHarness(t, 2, noBal, nil)
	m := h.mdss[1]
	if m.Rank() != 1 || m.Addr() != 1 || m.Balancer() == nil {
		t.Fatal("accessors")
	}
	if m.String() != "mds.1" {
		t.Fatalf("String = %q", m.String())
	}
	h.do(1, OpMkdir, "/x")
	if m.Sessions() != 1 {
		t.Fatalf("sessions = %d", m.Sessions())
	}
	if m.Crashed() {
		t.Fatal("fresh MDS crashed")
	}
}

func TestExportTimeoutUnfreezesAndCleansUp(t *testing.T) {
	h := newHarness(t, 2, noBal, func(c *Config) { c.ExportTimeout = 5 * sim.Second })
	h.do(0, OpMkdir, "/move")
	for i := 0; i < 10; i++ {
		h.do(0, OpCreate, "/move/"+nameOf(i))
	}
	d, _ := h.ns.Resolve("/move")
	m0 := h.mdss[0]
	// Importer unreachable: the discover is lost and the commit stalls.
	h.net.Partition(0, 1)
	h.net.Partition(1, 0)
	m0.startExport(exportUnit{dir: d, load: 5}, 1)
	if !d.Frozen() || m0.ExportsInFlight() != 1 || m0.activeExports != 1 {
		t.Fatal("export did not start")
	}
	// Park a request on the frozen unit; the abort must replay it.
	h.nextID++
	h.net.Send(h.client, simnet.Addr(0), &Request{ID: h.nextID, Client: h.client, Op: OpCreate, Path: "/move/parked"})
	h.engine.RunUntilIdle() // timeout fires at +5s
	if d.Frozen() {
		t.Fatal("unit still frozen after timeout")
	}
	if m0.ExportsInFlight() != 0 || m0.activeExports != 0 {
		t.Fatalf("leaked export state: inflight=%d active=%d", m0.ExportsInFlight(), m0.activeExports)
	}
	if m0.Counters.ExportAborts != 1 || m0.Counters.Exports != 0 {
		t.Fatalf("aborts=%d exports=%d", m0.Counters.ExportAborts, m0.Counters.Exports)
	}
	last := h.replies[len(h.replies)-1]
	if last.Err != "" {
		t.Fatalf("parked request failed after abort: %s", last.Err)
	}
	if _, err := h.ns.Resolve("/move/parked"); err != nil {
		t.Fatal("parked create not replayed after abort")
	}
}

func TestExportTimeoutCancelledOnCompletion(t *testing.T) {
	h := newHarness(t, 2, noBal, func(c *Config) { c.ExportTimeout = 5 * sim.Second })
	h.do(0, OpMkdir, "/move")
	for i := 0; i < 10; i++ {
		h.do(0, OpCreate, "/move/"+nameOf(i))
	}
	d, _ := h.ns.Resolve("/move")
	m0 := h.mdss[0]
	m0.startExport(exportUnit{dir: d, load: 5}, 1)
	// RunUntilIdle drains past the +5s timeout mark; a completed commit
	// must have cancelled it, so nothing aborts and nothing leaks.
	h.engine.RunUntilIdle()
	if m0.Counters.Exports != 1 || m0.Counters.ExportAborts != 0 {
		t.Fatalf("exports=%d aborts=%d", m0.Counters.Exports, m0.Counters.ExportAborts)
	}
	if m0.ExportsInFlight() != 0 || h.mdss[1].ImportsInFlight() != 0 {
		t.Fatal("leaked migration state after commit")
	}
	if h.ns.EffectiveAuth(d) != 1 || d.Frozen() {
		t.Fatal("commit did not take effect")
	}
}

func TestImporterDeathMidExportAborts(t *testing.T) {
	h := newHarness(t, 2, noBal, func(c *Config) { c.ExportTimeout = 5 * sim.Second })
	h.do(0, OpMkdir, "/move")
	for i := 0; i < 10; i++ {
		h.do(0, OpCreate, "/move/"+nameOf(i))
	}
	d, _ := h.ns.Resolve("/move")
	m0, m1 := h.mdss[0], h.mdss[1]
	m0.startExport(exportUnit{dir: d, load: 5}, 1)
	// Let the discover/prep round trip land, then kill the importer before
	// the payload arrives.
	h.engine.Run(h.engine.Now() + 300*sim.Microsecond)
	m1.Crash()
	h.engine.RunUntilIdle()
	if d.Frozen() {
		t.Fatal("unit wedged after importer death")
	}
	if m0.Counters.ExportAborts != 1 || m0.ExportsInFlight() != 0 || m0.activeExports != 0 {
		t.Fatalf("exporter state: aborts=%d inflight=%d active=%d",
			m0.Counters.ExportAborts, m0.ExportsInFlight(), m0.activeExports)
	}
	if m1.ImportsInFlight() != 0 {
		t.Fatal("importer leaked import state across crash")
	}
	if h.ns.EffectiveAuth(d) != 0 {
		t.Fatal("authority moved despite aborted commit")
	}
}

func TestCrashMidExportUnfreezesUnits(t *testing.T) {
	h := newHarness(t, 2, noBal, nil)
	h.do(0, OpMkdir, "/move")
	for i := 0; i < 10; i++ {
		h.do(0, OpCreate, "/move/"+nameOf(i))
	}
	d, _ := h.ns.Resolve("/move")
	m0 := h.mdss[0]
	m0.startExport(exportUnit{dir: d, load: 5}, 1)
	if !d.Frozen() {
		t.Fatal("not frozen at export start")
	}
	m0.Crash()
	if d.Frozen() {
		t.Fatal("crash left the unit frozen")
	}
	if m0.ExportsInFlight() != 0 || m0.activeExports != 0 {
		t.Fatal("crash left export state behind")
	}
	// Stray in-flight protocol messages must be harmless.
	h.engine.RunUntilIdle()
	if h.ns.EffectiveAuth(d) != 0 {
		t.Fatal("authority moved after exporter crash")
	}
}

func TestImportTimeoutRollsBackIntent(t *testing.T) {
	h := newHarness(t, 2, noBal, func(c *Config) { c.ExportTimeout = 5 * sim.Second })
	m1 := h.mdss[1]
	h.do(0, OpMkdir, "/ghost")
	// A discover whose exporter has no matching state: the prep is ignored
	// and the payload never comes, so the importer's cleanup timer must
	// roll back the journaled intent.
	h.net.Send(simnet.Addr(0), simnet.Addr(1), &exportDiscover{
		ExportID: 0xdead, From: 0, Path: "/ghost", Nodes: 1,
	})
	h.engine.Run(h.engine.Now() + sim.Second)
	if m1.ImportsInFlight() != 1 {
		t.Fatalf("imports in flight = %d", m1.ImportsInFlight())
	}
	flushedBefore := m1.Journal().Flushed()
	h.engine.RunUntilIdle()
	if m1.ImportsInFlight() != 0 {
		t.Fatal("import state leaked past timeout")
	}
	if m1.Counters.ImportAborts != 1 {
		t.Fatalf("import aborts = %d", m1.Counters.ImportAborts)
	}
	if m1.Journal().Flushed() <= flushedBefore {
		t.Fatal("no rollback entry journaled")
	}
}
