package mds

import (
	"sort"

	"mantle/internal/namespace"
)

// Dynamic membership: the elastic coordinator grows and shrinks the active
// rank set at runtime. Ranks stay contiguous — active ranks are always
// [0, numRanks), a grow activates rank numRanks, a shrink drains the top
// rank — so every rank's view of the cluster is a single count, exactly like
// CephFS's max_mds. The peers slice is sized to the maximum pool at
// construction; SetClusterSize moves the active boundary within it.

// SetClusterSize updates this rank's view of the active rank count. Callers
// (the elastic coordinator, via the host) broadcast the new size to every
// live rank on each membership epoch. n must fit within the peer table the
// MDS was built with.
func (m *MDS) SetClusterSize(n int) {
	if n < 1 || n > len(m.peers) {
		panic("mds: cluster size outside peer table")
	}
	// Forget heartbeats from ranks beyond the new boundary so buildEnv and
	// rebalance never act on a retired rank's stale metrics after a regrow.
	for r := n; r < m.numRanks; r++ {
		delete(m.hbData, namespace.Rank(r))
	}
	m.numRanks = n
}

// ClusterSize reports this rank's view of the active rank count.
func (m *MDS) ClusterSize() int { return m.numRanks }

// StartDrain begins moving every bound this rank owns to its peers: from the
// next balancer tick the rank advertises Draining in its heartbeats (so
// peers stop targeting it), refuses new imports, and replaces its rebalance
// phase with drainTick until the coordinator observes DrainComplete and
// retires it.
func (m *MDS) StartDrain() {
	if m.rank == 0 {
		panic("mds: rank 0 owns the root and never drains")
	}
	m.draining = true
}

// Draining reports whether this rank is leaving the cluster.
func (m *MDS) Draining() bool { return m.draining }

// AbortDrain returns the rank to full membership: it stops advertising
// Draining, accepts imports again, and resumes normal balancing on the next
// tick, keeping whatever bounds the abandoned drain left it.
func (m *MDS) AbortDrain() { m.draining = false }

// DrainComplete reports whether the rank has fully handed off: no bounds
// left in the namespace, no migration mid-two-phase-commit in either
// direction, and nothing queued or executing. The coordinator polls this
// before deregistering the rank; a false result just means "poll again after
// the next tick".
func (m *MDS) DrainComplete() bool {
	return m.draining && !m.busy &&
		len(m.exports) == 0 && len(m.imports) == 0 &&
		m.QueueLen() == 0 && len(m.ns.SubtreeRoots(m.rank)) == 0
}

// BoundsLeft reports how many subtree bounds the rank still owns (drain
// progress for logs and tests).
func (m *MDS) BoundsLeft() int { return len(m.ns.SubtreeRoots(m.rank)) }

// Retire permanently removes the daemon after a leave commits (or is
// forced): periodic work stops, the address is released, and the daemon is
// fenced so a stray Recover cannot resurrect it. Unlike Crash, the rank's
// bounds are expected to be gone already — drained to peers, or moved by the
// coordinator's forced reassignment.
func (m *MDS) Retire() {
	m.Stop()
	if !m.crashed {
		m.net.Unregister(m.addr)
	}
	m.crashed = true
	m.retired = true
	m.queue = nil
	m.deferred = nil
	m.busy = false
	// A retired rank's replicas and revoke obligations leave with it
	// (mirrors Crash — Retire does not go through Crash).
	if m.rep != nil {
		m.rep.Reg.DropRank(m.rank)
	}
}

// Retired reports whether the daemon left the cluster for good.
func (m *MDS) Retired() bool { return m.retired }

// LastHeartbeat returns this rank's most recent self-heartbeat — the same
// metrics it advertises to peers, which the elastic host feeds to the
// when_elastic hook.
func (m *MDS) LastHeartbeat() Heartbeat { return m.hbData[m.rank] }

// PeerHeartbeat returns this rank's current view of a peer's load vector
// (false when the peer never heartbeated, or its aggregated load-map entry
// aged out). Callers must hold the rank's execution context — the actor's
// shard lock in the live runtime.
func (m *MDS) PeerHeartbeat(r namespace.Rank) (Heartbeat, bool) {
	hb, ok := m.hbData[r]
	return hb, ok
}

// drainTick is the draining rank's replacement for rebalance: export every
// unit this rank owns toward the least-loaded active peers, respecting the
// same concurrent-export bound as normal balancing. Frozen units are already
// mid-migration and are skipped; whatever does not fit this tick goes on the
// next one.
func (m *MDS) drainTick() {
	if m.stopped || m.crashed || !m.draining {
		return
	}
	donors := m.drainDonors()
	if len(donors) == 0 {
		return
	}
	units := m.drainUnits()
	di := 0
	for _, u := range units {
		if m.activeExports >= m.cfg.MaxConcurrentExports {
			break
		}
		dest := donors[di%len(donors)]
		di++
		m.Counters.DrainExports++
		m.startExport(u, dest)
	}
}

// drainDonors lists active, non-draining, non-failed peers ordered by their
// last-advertised load (least-loaded first), so a drain spreads bounds the
// same way a donor-selection policy would.
func (m *MDS) drainDonors() []namespace.Rank {
	var out []namespace.Rank
	for r := 0; r < m.numRanks; r++ {
		rank := namespace.Rank(r)
		if rank == m.rank {
			continue
		}
		if hb, ok := m.hbData[rank]; ok && hb.Draining {
			continue
		}
		out = append(out, rank)
	}
	sort.SliceStable(out, func(i, j int) bool {
		return m.hbData[out[i]].Auth < m.hbData[out[j]].Auth
	})
	return out
}

// drainUnits enumerates every export unit the rank still owns, without the
// load filtering normal balancing applies: a drain must move cold metadata
// too.
func (m *MDS) drainUnits() []exportUnit {
	now := m.engine.Now()
	var out []exportUnit
	for _, root := range m.ns.SubtreeRoots(m.rank) {
		if root.IsFrag {
			fs, ok := root.Dir.FragStateOf(root.Frag)
			if !ok || fs.Frozen() {
				continue
			}
			out = append(out, exportUnit{
				dir: root.Dir, frag: root.Frag, isFrag: true,
				load: m.metaLoadOf(fs.Counters.Snapshot(now)),
			})
			continue
		}
		if root.Dir.Frozen() {
			continue
		}
		out = append(out, exportUnit{dir: root.Dir, load: m.metaLoadOf(root.Dir.Load(now))})
	}
	return out
}

// handleExportNack (exporter): the importer refused the unit (it is draining
// out of the cluster). Abort now rather than waiting out the export timeout;
// the unit unfreezes and a later tick retries against a live target.
func (m *MDS) handleExportNack(n *exportNack) {
	m.abortExport(n.ExportID)
}
