package mds

import (
	"testing"

	"mantle/internal/balancer"
	"mantle/internal/replica"
	"mantle/internal/sim"
)

// enableReplication wires a shared registry into every rank of the harness
// with a never-grant hook (tests drive grants directly via the registry).
func enableReplication(h *harness) *replica.Registry {
	reg := replica.NewRegistry()
	for _, m := range h.mdss {
		m.SetReplication(&Replication{
			Reg:         reg,
			When:        func(balancer.ReplicaEnv) (int, error) { return 0, nil },
			MaxReplicas: 2,
		})
	}
	return reg
}

func TestReplicaReadServedLocally(t *testing.T) {
	h := newHarness(t, 2, noBal, nil)
	reg := enableReplication(h)
	h.do(0, OpMkdir, "/a")
	h.do(0, OpCreate, "/a/f")
	// Without a replica, a read at the wrong rank forwards to the auth.
	if rep := h.do(1, OpGetattr, "/a/f"); rep.Err != "" || rep.Forwards != 1 {
		t.Fatalf("pre-grant read: err=%q forwards=%d", rep.Err, rep.Forwards)
	}
	reg.Grant("/a", 1)
	rep := h.do(1, OpGetattr, "/a/f")
	if rep.Err != "" || rep.Forwards != 0 {
		t.Fatalf("replica read: err=%q forwards=%d", rep.Err, rep.Forwards)
	}
	if h.mdss[1].Counters.ReplicaReads != 1 {
		t.Fatalf("ReplicaReads = %d", h.mdss[1].Counters.ReplicaReads)
	}
	// The read reply carries the holder set so clients learn replica routes.
	found := false
	for _, hint := range rep.Hints {
		if hint.DirPath == "/a" && len(hint.Replicas) == 1 && hint.Replicas[0] == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no replica hint in %+v", rep.Hints)
	}
	// Mutations never use the replica path: a create at rank 1 forwards
	// (and, being a write under /a, revokes the replica first).
	if rep := h.do(1, OpCreate, "/a/g"); rep.Err != "" || rep.Forwards != 1 {
		t.Fatalf("mutation: err=%q forwards=%d", rep.Err, rep.Forwards)
	}
	if reg.HasHolders("/a") {
		t.Fatal("replica survived the create")
	}
}

// revokeBeforeWrite pins the consistency invariant for one mutation type:
// the write stalls until the holder acks the revoke, and applies with zero
// holders left (ReplicaWriteConflicts would count a violation).
func revokeBeforeWrite(t *testing.T, op OpType, path, dst string) {
	t.Helper()
	h := newHarness(t, 2, noBal, nil)
	reg := enableReplication(h)
	h.do(0, OpMkdir, "/a")
	h.do(0, OpCreate, "/a/f")
	reg.Grant("/a", 1)
	rep := h.do(0, op, path, dst)
	if rep == nil || rep.Err != "" {
		t.Fatalf("%v: %+v", op, rep)
	}
	m0 := h.mdss[0]
	if m0.Counters.ReplicaWriteStalls != 1 {
		t.Fatalf("write stalls = %d, want 1", m0.Counters.ReplicaWriteStalls)
	}
	if m0.Counters.ReplicaRevokes != 1 {
		t.Fatalf("revokes = %d, want 1", m0.Counters.ReplicaRevokes)
	}
	if h.mdss[1].Counters.ReplicaRevokeAcks != 1 {
		t.Fatalf("acks = %d, want 1", h.mdss[1].Counters.ReplicaRevokeAcks)
	}
	if m0.Counters.ReplicaWriteConflicts != 0 {
		t.Fatalf("CONSISTENCY: %d writes applied over a live replica", m0.Counters.ReplicaWriteConflicts)
	}
	if m0.Counters.ReplicaForcedRevokes != 0 {
		t.Fatalf("forced revokes = %d, want 0", m0.Counters.ReplicaForcedRevokes)
	}
	if reg.HasHolders("/a") {
		t.Fatal("replica survived the write")
	}
}

func TestRenameRevokesBeforeWrite(t *testing.T) {
	revokeBeforeWrite(t, OpRename, "/a/f", "/a/g")
}

func TestUnlinkRevokesBeforeWrite(t *testing.T) {
	revokeBeforeWrite(t, OpUnlink, "/a/f", "")
}

func TestCreateRevokesBeforeWrite(t *testing.T) {
	revokeBeforeWrite(t, OpCreate, "/a/new", "")
}

func TestSetattrRevokesBeforeWrite(t *testing.T) {
	revokeBeforeWrite(t, OpSetattr, "/a/f", "")
}

func TestRenameOfDirInvalidatesSubtreeReplicas(t *testing.T) {
	h := newHarness(t, 2, noBal, nil)
	reg := enableReplication(h)
	h.ns.SetInvalidateHook(func(p string) { reg.InvalidateSubtree(p) })
	h.do(0, OpMkdir, "/a")
	h.do(0, OpMkdir, "/a/sub")
	h.do(0, OpCreate, "/a/sub/f")
	reg.Grant("/a/sub", 1)
	if rep := h.do(0, OpRename, "/a/sub", "/a/moved"); rep.Err != "" {
		t.Fatalf("rename: %s", rep.Err)
	}
	if reg.HasHolders("/a/sub") || reg.HasHolders("/a/moved") {
		t.Fatal("stale replica under a renamed directory")
	}
	if h.mdss[0].Counters.ReplicaWriteConflicts != 0 {
		t.Fatalf("conflicts = %d", h.mdss[0].Counters.ReplicaWriteConflicts)
	}
}

func TestHolderCrashMidRevokeForcesCompletion(t *testing.T) {
	h := newHarness(t, 2, noBal, func(c *Config) { c.ReplicaRevokeTimeout = 2 * sim.Second })
	reg := enableReplication(h)
	h.do(0, OpMkdir, "/a")
	h.do(0, OpCreate, "/a/f")
	// Crash the holder first so it never acks, then grant behind the
	// registry's back — the shape of a holder dying with the revoke on the
	// wire (its DropRank already ran, the grant raced in after).
	h.mdss[1].Crash()
	reg.Grant("/a", 1)
	rep := h.do(0, OpRename, "/a/f", "/a/g")
	if rep == nil || rep.Err != "" {
		t.Fatalf("rename: %+v", rep)
	}
	m0 := h.mdss[0]
	if m0.Counters.ReplicaForcedRevokes != 1 {
		t.Fatalf("forced revokes = %d, want 1", m0.Counters.ReplicaForcedRevokes)
	}
	if m0.Counters.ReplicaWriteConflicts != 0 {
		t.Fatalf("conflicts = %d", m0.Counters.ReplicaWriteConflicts)
	}
	if reg.HasHolders("/a") {
		t.Fatal("replica survived the forced revoke")
	}
}

func TestCrashDropsHolderships(t *testing.T) {
	h := newHarness(t, 2, noBal, nil)
	reg := enableReplication(h)
	h.do(0, OpMkdir, "/a")
	reg.Grant("/a", 1)
	h.mdss[1].Crash()
	if reg.HasHolders("/a") {
		t.Fatal("crashed rank still holds a replica")
	}
	// The write must not stall on the dead holder.
	rep := h.do(0, OpCreate, "/a/f")
	if rep.Err != "" || h.mdss[0].Counters.ReplicaWriteStalls != 0 {
		t.Fatalf("err=%q stalls=%d", rep.Err, h.mdss[0].Counters.ReplicaWriteStalls)
	}
}

func TestRetireDropsHolderships(t *testing.T) {
	h := newHarness(t, 2, noBal, nil)
	reg := enableReplication(h)
	h.do(0, OpMkdir, "/a")
	reg.Grant("/a", 1)
	h.mdss[1].Retire()
	if reg.HasHolders("/a") {
		t.Fatal("retired rank still holds a replica")
	}
}

func TestMigrationExportInvalidatesReplicas(t *testing.T) {
	h := newHarness(t, 2, noBal, nil)
	reg := enableReplication(h)
	h.do(0, OpMkdir, "/move")
	for i := 0; i < 20; i++ {
		h.do(0, OpCreate, "/move/"+nameOf(i))
	}
	reg.Grant("/move", 1)
	d, _ := h.ns.Resolve("/move")
	h.mdss[0].startExport(exportUnit{dir: d, load: 10}, 1)
	// Replicas die at export start, before the freeze even lifts: the
	// importer rebuilds heat and the policy re-grants if still warranted.
	if reg.HasHolders("/move") {
		t.Fatal("replica survived migration export")
	}
	h.engine.RunUntilIdle()
	if got := h.ns.EffectiveAuth(d); got != 1 {
		t.Fatalf("auth = %d", got)
	}
}

func TestDisabledReplicationIsInert(t *testing.T) {
	h := newHarness(t, 2, noBal, nil)
	h.do(0, OpMkdir, "/a")
	h.do(0, OpCreate, "/a/f")
	h.do(1, OpGetattr, "/a/f")
	h.do(0, OpRename, "/a/f", "/a/g")
	for r, m := range h.mdss {
		c := m.Counters
		if c.ReplicaReads != 0 || c.ReplicaGrants != 0 || c.ReplicaRevokes != 0 ||
			c.ReplicaWriteStalls != 0 || c.ReplicaWriteConflicts != 0 {
			t.Fatalf("rank %d replica counters moved with replication off: %+v", r, c)
		}
	}
	for _, rep := range h.replies {
		for _, hint := range rep.Hints {
			if hint.Replicas != nil {
				t.Fatalf("replica hint with replication off: %+v", hint)
			}
		}
	}
}
