package mds

import (
	"sort"

	"mantle/internal/balancer"
	"mantle/internal/namespace"
	"mantle/internal/replica"
	"mantle/internal/simnet"
)

// Read replication (hotspot mitigation): the authoritative rank for a
// read-hot directory grants read replicas of it to peer ranks, which then
// serve non-mutating requests for the directory locally instead of
// forwarding them. The when_replicate hook decides grant/revoke per
// candidate each balancer epoch; placement (which peer) stays mechanism.
//
// Coherence is revoke-before-write: a mutation touching a replicated
// directory registers a write intent (blocking further grants), sends a
// revoke to every holder, and parks until the last holder acks — or until
// ReplicaRevokeTimeout force-completes the round (holder crashed). Rank
// death and migration export invalidate grants through the shared registry
// instead: the freeze/unregister barrier already excludes conflicting
// traffic there.

// Replication is the per-rank handle on the subsystem: the shared registry
// plus the rank's compiled when_replicate hook. A nil handle (the default,
// and always in simulation) disables every replication code path.
type Replication struct {
	// Reg is the shared placement registry (one per cluster).
	Reg *replica.Registry
	// When evaluates the when_replicate hook; nil uses no policy and
	// never grants.
	When func(balancer.ReplicaEnv) (int, error)
	// MaxReplicas caps replicas per directory (the hook sees it as
	// max_replicas).
	MaxReplicas int
}

// SetReplication enables read replication on this rank. Call before Start.
func (m *MDS) SetReplication(rep *Replication) { m.rep = rep }

// replicaRead reports whether a misdirected non-mutating request can be
// served from a local read replica instead of forwarded.
func (m *MDS) replicaRead(r *Request, res resolved) bool {
	r.viaReplica = false
	if m.rep == nil || r.Op.Mutating() || res.dir == nil {
		return false
	}
	if !m.rep.Reg.ActiveHolder(res.dir.Path(), m.rank) {
		return false
	}
	m.Counters.ReplicaReads++
	r.viaReplica = true
	return true
}

// barrierPaths lists the replicated-state paths a mutation must clear of
// holders before applying: the containing directory, the rename
// destination's directory, and — for structural ops moving or deleting a
// whole directory — everything replicated underneath it.
func (m *MDS) barrierPaths(r *Request, res resolved) []string {
	paths := []string{res.dir.Path()}
	addUnder := func(prefix string) {
		paths = append(paths, m.rep.Reg.PathsUnder(prefix)...)
	}
	switch r.Op {
	case OpRename:
		if dstDir, _, err := m.nsv.ResolveDirOf(r.DstPath); err == nil {
			paths = append(paths, dstDir.Path())
		}
		if node, ok := res.dir.Lookup(res.name); ok && node.IsDir() {
			addUnder(node.Path())
		}
	case OpUnlink:
		if node, ok := res.dir.Lookup(res.name); ok && node.IsDir() {
			addUnder(node.Path())
		}
	}
	sort.Strings(paths)
	out := paths[:0]
	for i, p := range paths {
		if i == 0 || p != paths[i-1] {
			out = append(out, p)
		}
	}
	return out
}

// replicaBarrier enforces revoke-before-write. It registers write intents
// for every barrier path the request does not already hold, and when any
// path still has replica holders it starts (or joins) their revoke rounds
// and parks the request — true means "parked, do not execute yet". The
// request re-enqueues itself once the last round completes; the recorded
// heldPaths keep the re-serve from double-registering.
func (m *MDS) replicaBarrier(r *Request, res resolved) bool {
	held := make(map[string]bool, len(r.heldPaths))
	for _, p := range r.heldPaths {
		held[p] = true
	}
	pending := 0
	ready := func() {
		pending--
		if pending > 0 || m.crashed || m.retired {
			return
		}
		m.enqueue(r)
	}
	type round struct {
		path   string
		notify []namespace.Rank
	}
	var rounds []round
	for _, p := range m.barrierPaths(r, res) {
		if held[p] {
			continue
		}
		r.heldPaths = append(r.heldPaths, p)
		notify, wait := m.rep.Reg.BeginWrite(p, m.rank, ready)
		if wait {
			pending++
			rounds = append(rounds, round{path: p, notify: notify})
		}
	}
	if pending == 0 {
		return false
	}
	m.Counters.ReplicaWriteStalls++
	for _, rd := range rounds {
		m.sendRevokes(rd.path, rd.notify)
	}
	return true
}

// sendRevokes mails a revoke to each holder and arms the force-complete
// timeout for the round. notify may be empty (this writer joined a round
// another writer started — the messages are already in flight).
func (m *MDS) sendRevokes(path string, notify []namespace.Rank) {
	for _, h := range notify {
		m.Counters.ReplicaRevokes++
		m.net.Send(m.addr, m.peers[h], &replicaRevoke{Path: path, From: m.rank})
	}
	if len(notify) > 0 && m.cfg.ReplicaRevokeTimeout > 0 {
		m.engine.Schedule(m.cfg.ReplicaRevokeTimeout, func() {
			if m.rep.Reg.ForceComplete(path) {
				m.Counters.ReplicaForcedRevokes++
			}
		})
	}
}

// releaseWriteIntents drops the request's registry write intents (after the
// mutation applied, or before the request leaves this rank).
func (m *MDS) releaseWriteIntents(r *Request) {
	if m.rep == nil || len(r.heldPaths) == 0 {
		return
	}
	for _, p := range r.heldPaths {
		m.rep.Reg.EndWrite(p, m.rank)
	}
	r.heldPaths = nil
}

// replicaLoad sums the metadata load of the directories this rank holds
// replicas of — the replica share of the "all" load it advertises.
func (m *MDS) replicaLoad() float64 {
	var total float64
	now := m.engine.Now()
	for _, p := range m.rep.Reg.HeldPaths(m.rank) {
		if node, err := m.nsv.Resolve(p); err == nil && node.IsDir() {
			total += m.metaLoadOf(node.Load(now))
		}
	}
	return total
}

// replicaTick is the replication half of the balancer epoch: evaluate
// when_replicate over this rank's hottest directories and grant or revoke
// accordingly. Runs alongside rebalance, off the same stale heartbeat view.
func (m *MDS) replicaTick() {
	if m.rep == nil || m.stopped || m.crashed || m.draining || m.numRanks < 2 {
		return
	}
	e := m.buildEnv()
	for r := 0; r < m.numRanks; r++ {
		load, err := m.bal.MDSLoad(namespace.Rank(r), e)
		if err != nil {
			m.Counters.PolicyErrors++
			return
		}
		if load < 0 {
			load = 0
		}
		e.MDSs[r].Load = load
		e.Total += load
	}
	for _, cand := range m.replicaCandidates() {
		path := cand.dir.Path()
		holders := m.rep.Reg.Holders(path)
		snap := cand.dir.Load(m.engine.Now())
		env := balancer.ReplicaEnv{
			WhoAmI: m.rank, Active: m.numRanks, MaxReplicas: m.rep.MaxReplicas,
			Total: e.Total, MDSs: e.MDSs,
			Path: path, Heat: cand.load,
			Rd: snap.IRD + snap.Readdir, Wr: snap.IWR,
			Replicas: len(holders),
		}
		verdict := 0
		if m.rep.When != nil {
			var err error
			verdict, err = m.rep.When(env)
			if err != nil {
				m.Counters.PolicyErrors++
				continue
			}
		}
		switch {
		case verdict > 0:
			m.grantReplica(path, e, holders)
		case verdict < 0:
			if notify, ok := m.rep.Reg.Revoke(path); ok {
				m.sendRevokes(path, notify)
			}
		}
	}
}

// replicaCandidates lists this rank's hottest whole directories by READ
// heat (frag units collapse onto their directory: replicas are
// per-directory). Heat is deliberately not the balancer's MetaLoad — that
// scalar is migration policy and may weight writes only (greedy_spill uses
// IWR), which would blind replication to exactly the read-hot directories
// it exists for. CephLoad keeps the scalar and the rd gate policy-free.
func (m *MDS) replicaCandidates() []exportUnit {
	now := m.engine.Now()
	seen := map[*namespace.Node]bool{}
	var cands []exportUnit
	for _, u := range m.initialUnits() {
		if seen[u.dir] {
			continue
		}
		seen[u.dir] = true
		snap := u.dir.Load(now)
		if snap.IRD+snap.Readdir <= m.cfg.MinExportLoad {
			continue
		}
		cands = append(cands, exportUnit{dir: u.dir, load: snap.CephLoad()})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].load != cands[j].load {
			return cands[i].load > cands[j].load
		}
		return cands[i].dir.Path() < cands[j].dir.Path()
	})
	if len(cands) > 4 {
		cands = cands[:4]
	}
	return cands
}

// grantReplica places one more replica of path on the least-loaded active
// peer that does not already hold one and is not draining.
func (m *MDS) grantReplica(path string, e *balancer.Env, holders []namespace.Rank) {
	holding := make(map[namespace.Rank]bool, len(holders))
	for _, h := range holders {
		holding[h] = true
	}
	target := namespace.RankNone
	best := 0.0
	for r := 0; r < m.numRanks; r++ {
		rank := namespace.Rank(r)
		if rank == m.rank || holding[rank] || m.hbData[rank].Draining {
			continue
		}
		if target == namespace.RankNone || e.MDSs[r].Load < best {
			target = rank
			best = e.MDSs[r].Load
		}
	}
	if target == namespace.RankNone || !m.rep.Reg.Grant(path, target) {
		return
	}
	m.Counters.ReplicaGrants++
	m.net.Send(m.addr, m.peers[target], &replicaGrant{Path: path, From: m.rank})
}

// handleReplicaGrant (holder): the replica payload arrived. The registry
// entry was created by the granting authority, so there is no local state
// to install — the message models the payload shipping and keeps the grant
// observable on the wire.
func (m *MDS) handleReplicaGrant(from simnet.Addr, g *replicaGrant) {}

// handleReplicaRevoke (holder): stop serving the path from the replica
// (the registry already marks the entry revoking, so replicaRead refuses
// new reads) and ack once the server is idle — any replica read already
// admitted has finished by then.
func (m *MDS) handleReplicaRevoke(rv *replicaRevoke) {
	if m.rep == nil {
		return
	}
	from := rv.From
	path := rv.Path
	m.whenIdle(func(done func()) {
		done()
		if m.crashed || int(from) >= len(m.peers) {
			return
		}
		m.Counters.ReplicaRevokeAcks++
		m.net.Send(m.addr, m.peers[from], &replicaRevokeAck{Path: path, From: m.rank})
	})
}

// handleReplicaRevokeAck (authority): fold the holder's ack into the round;
// the last ack wakes the parked writers.
func (m *MDS) handleReplicaRevokeAck(a *replicaRevokeAck) {
	if m.rep == nil {
		return
	}
	m.rep.Reg.Ack(a.Path, a.From)
}
