// Package client implements closed-loop metadata clients: each client keeps
// one request outstanding, learns the subtree→MDS mapping from reply hints
// (as CephFS clients build their mapping from responses), hashes dentry
// names into fragment maps for directories whose dirfrags are split across
// ranks, and absorbs session-flush stalls during migrations.
package client

import (
	"strings"

	"mantle/internal/mds"
	"mantle/internal/namespace"
	"mantle/internal/sim"
	"mantle/internal/simnet"
	"mantle/internal/stats"
	"mantle/internal/telemetry"
	"mantle/internal/workload"
)

// Config tunes client behaviour.
type Config struct {
	// ThinkTime is the delay between receiving a reply and issuing the
	// next operation.
	ThinkTime sim.Time
	// FlushStall is how long a session flush blocks the next issue.
	FlushStall sim.Time
	// MaxRetries re-issues an op that failed with a transient error.
	MaxRetries int
	// RequestTimeout re-sends an operation whose reply never arrives
	// (MDS crash or partition). After two consecutive timeouts the
	// client drops its routing cache and starts over from rank 0.
	RequestTimeout sim.Time
	// RetryBudget bounds consecutive timeouts for one operation; past it
	// the op is abandoned (counted in GaveUp and Errors) and the workload
	// moves on, so a dead cluster region fails ops cleanly instead of
	// hanging the client forever. 0 = retry without bound (the historical
	// behaviour).
	RetryBudget int
	// BackoffBase enables exponential backoff between timeout retries:
	// the k-th consecutive retry waits BackoffBase*2^(k-1), capped at
	// BackoffMax, plus deterministic jitter of ±25%. 0 = immediate resend
	// (the historical behaviour).
	BackoffBase sim.Time
	// BackoffMax caps the exponential backoff delay (0 = 64*BackoffBase).
	BackoffMax sim.Time
	// StartJitter delays the client's first operation by a uniformly
	// random amount in [0, StartJitter] — real clients never launch in
	// perfect lockstep, and the skew is what makes balancer runs diverge
	// (Figure 4).
	StartJitter sim.Time
	// HintCapacity bounds the client's routing cache (0 = unlimited).
	// A small cache makes finely-scattered metadata cause repeated
	// forwards — the "memory needed to cache path prefixes" cost of
	// losing locality (§2.1 of the paper).
	HintCapacity int
}

// DefaultConfig returns standard client behaviour.
func DefaultConfig() Config {
	return Config{
		ThinkTime:      25 * sim.Microsecond,
		FlushStall:     2 * sim.Millisecond,
		MaxRetries:     0,
		RequestTimeout: 10 * sim.Second,
	}
}

// Client is one closed-loop workload driver.
type Client struct {
	ID     int
	addr   simnet.Addr
	engine *sim.Engine
	net    *simnet.Network
	cfg    Config
	gen    workload.Generator
	mdss   []simnet.Addr // MDS address by rank

	subtree map[string]namespace.Rank
	frags   map[string][]mds.FragHint
	hintAge map[string]uint64
	ageTick uint64

	nextID      uint64
	inflightID  uint64
	inflightAt  sim.Time
	inflightOp  workload.Op
	retries     int
	timeoutsRow int
	timeoutEv   sim.Event
	backoffEv   sim.Event
	flushUntil  sim.Time
	done        bool

	// Stats.
	Completed      int
	Errors         int
	Timeouts       int
	GaveUp         int // ops abandoned after the retry budget ran out
	ForwardedOps   int // ops that took at least one forward
	TotalForwards  int
	SessionFlushes int
	Latency        stats.Sample
	DoneAt         sim.Time
	ServedBy       map[namespace.Rank]int

	// OnDone fires when the generator is exhausted.
	OnDone func(c *Client)
	// OnComplete fires per completed op (cluster metrics hook).
	OnComplete func(c *Client, op workload.Op, served namespace.Rank, lat sim.Time)

	// Telemetry (nil = disabled).
	tel      *telemetry.Telemetry
	hLatency *telemetry.Histogram
	hHops    *telemetry.Histogram
	cFlushes *telemetry.Counter
	cOps     *telemetry.Counter
}

// SetTelemetry attaches a telemetry sink. Client metrics are keyed by client
// ID so per-client tails are visible; span emission threads the TraceID the
// MDS echoes through forwards and journal writes.
func (c *Client) SetTelemetry(t *telemetry.Telemetry) {
	c.tel = t
	if t == nil {
		return
	}
	c.hLatency = t.Reg.Histogram("client.latency_us", c.ID)
	c.hHops = t.Reg.Histogram("client.req_hops", c.ID)
	c.cFlushes = t.Reg.Counter("client.session_flushes", c.ID)
	c.cOps = t.Reg.Counter("client.ops", c.ID)
}

// New registers a client on the network. mdss maps rank→address.
func New(id int, addr simnet.Addr, engine *sim.Engine, net *simnet.Network,
	cfg Config, gen workload.Generator, mdss []simnet.Addr) *Client {
	c := &Client{
		ID:       id,
		addr:     addr,
		engine:   engine,
		net:      net,
		cfg:      cfg,
		gen:      gen,
		mdss:     mdss,
		subtree:  map[string]namespace.Rank{"/": 0},
		frags:    map[string][]mds.FragHint{},
		hintAge:  map[string]uint64{},
		ServedBy: map[namespace.Rank]int{},
	}
	net.Register(addr, c)
	return c
}

// Addr reports the client's network address.
func (c *Client) Addr() simnet.Addr { return c.addr }

// Done reports whether the workload is exhausted.
func (c *Client) Done() bool { return c.done }

// Start issues the first operation after the configured start jitter.
func (c *Client) Start() {
	if c.cfg.StartJitter > 0 {
		c.engine.Schedule(sim.Time(c.engine.Rand().Int63n(int64(c.cfg.StartJitter)+1)), c.issueNext)
		return
	}
	c.issueNext()
}

// splitPath returns (parentDir, name) for a path; the root has name "".
func splitPath(p string) (string, string) {
	if p == "/" || p == "" {
		return "/", ""
	}
	p = strings.TrimRight(p, "/")
	i := strings.LastIndexByte(p, '/')
	if i <= 0 {
		return "/", p[i+1:]
	}
	return p[:i], p[i+1:]
}

// route picks the MDS rank for an operation from learned hints.
func (c *Client) route(op workload.Op) namespace.Rank {
	dir, name := splitPath(op.Path)
	if name != "" {
		if fh := c.frags[dir]; len(fh) > 0 {
			h := namespace.HashName(name)
			for _, f := range fh {
				if f.Frag.Contains(h) {
					return c.clampRank(f.Rank)
				}
			}
		}
	}
	// Longest-prefix match over subtree hints against the full path.
	best := ""
	rank := namespace.Rank(0)
	for k, r := range c.subtree {
		if k != "/" && op.Path != k && !strings.HasPrefix(op.Path, k+"/") {
			continue
		}
		if len(k) > len(best) || best == "" {
			best = k
			rank = r
		}
	}
	return c.clampRank(rank)
}

func (c *Client) clampRank(r namespace.Rank) namespace.Rank {
	if int(r) >= len(c.mdss) || r < 0 {
		return 0
	}
	return r
}

func (c *Client) issueNext() {
	if c.done {
		return
	}
	now := c.engine.Now()
	if now < c.flushUntil {
		c.engine.Schedule(c.flushUntil-now, c.issueNext)
		return
	}
	op, ok := c.gen.Next()
	if !ok {
		c.done = true
		c.DoneAt = now
		if c.OnDone != nil {
			c.OnDone(c)
		}
		return
	}
	c.send(op)
}

func (c *Client) send(op workload.Op) {
	c.nextID++
	c.inflightID = c.nextID
	c.inflightAt = c.engine.Now()
	c.inflightOp = op
	rank := c.route(op)
	req := &mds.Request{
		ID:       c.inflightID,
		Client:   c.addr,
		Op:       op.Type,
		Path:     op.Path,
		DstPath:  op.DstPath,
		IssuedAt: c.inflightAt,
	}
	if c.tel != nil {
		req.TraceID = uint64(c.ID)<<32 | c.inflightID
	}
	if c.cfg.RequestTimeout > 0 {
		id := c.inflightID
		c.timeoutEv = c.engine.Schedule(c.cfg.RequestTimeout, func() { c.onTimeout(id) })
	}
	c.net.Send(c.addr, c.mdss[rank], req)
}

// onTimeout re-sends an operation the cluster never answered. Two
// consecutive timeouts mean the client's routing knowledge points at a dead
// or unreachable MDS, so it is discarded (a fresh mount's view). With a
// retry budget the op is eventually abandoned; with backoff enabled the
// resends spread out exponentially so a recovering cluster is not stampeded
// by every client retrying in lockstep.
func (c *Client) onTimeout(id uint64) {
	if c.done || id != c.inflightID {
		return
	}
	c.Timeouts++
	c.timeoutsRow++
	if c.timeoutsRow >= 2 {
		c.ResetRouting()
	}
	if c.cfg.RetryBudget > 0 && c.timeoutsRow > c.cfg.RetryBudget {
		// Fail the op cleanly and move on.
		c.GaveUp++
		c.Errors++
		c.timeoutsRow = 0
		c.inflightID = 0
		c.issueNext()
		return
	}
	if c.cfg.BackoffBase > 0 {
		delay := c.backoffDelay()
		c.backoffEv = c.engine.Schedule(delay, func() {
			if c.done || id != c.inflightID {
				return
			}
			c.send(c.inflightOp)
		})
		return
	}
	c.send(c.inflightOp)
}

// backoffDelay computes the current retry's wait: exponential in the
// consecutive-timeout count, capped, with deterministic ±25% jitter drawn
// from the engine RNG so same-seed runs back off identically.
func (c *Client) backoffDelay() sim.Time {
	limit := c.cfg.BackoffMax
	if limit <= 0 {
		limit = 64 * c.cfg.BackoffBase
	}
	delay := c.cfg.BackoffBase
	for i := 1; i < c.timeoutsRow && delay < limit; i++ {
		delay *= 2
	}
	if delay > limit {
		delay = limit
	}
	delay += c.engine.Jitter(delay / 4)
	if delay < 0 {
		delay = 0
	}
	return delay
}

// HandleMessage implements simnet.Handler.
func (c *Client) HandleMessage(from simnet.Addr, msg simnet.Message) {
	switch v := msg.(type) {
	case *mds.Reply:
		c.handleReply(v)
	case *mds.SessionFlush:
		c.SessionFlushes++
		if c.tel != nil {
			c.cFlushes.Add(1)
			if c.tel.Tracer != nil {
				c.tel.Tracer.Instant(telemetry.PIDClients, c.ID, "session",
					"session flush", c.engine.Now(),
					telemetry.Arg{Key: "from", Val: int64(v.From)})
			}
		}
		until := c.engine.Now() + c.cfg.FlushStall
		if until > c.flushUntil {
			c.flushUntil = until
		}
	}
}

func (c *Client) handleReply(rep *mds.Reply) {
	if rep.ReqID != c.inflightID {
		return // stale duplicate (or a reply that lost to its timeout)
	}
	c.engine.Cancel(c.timeoutEv)
	c.engine.Cancel(c.backoffEv)
	c.timeoutsRow = 0
	for _, h := range rep.Hints {
		c.learn(h)
	}
	lat := c.engine.Now() - c.inflightAt
	if rep.Err != "" {
		c.Errors++
		if c.retries < c.cfg.MaxRetries {
			c.retries++
			op := c.inflightOp
			c.engine.Schedule(c.cfg.ThinkTime, func() { c.send(op) })
			return
		}
	} else {
		c.Completed++
		c.Latency.Add(lat.Millis())
		c.ServedBy[rep.Served]++
		if rep.Forwards > 0 {
			c.ForwardedOps++
			c.TotalForwards += rep.Forwards
		}
		if c.tel != nil {
			c.cOps.Add(1)
			c.hLatency.Observe(float64(lat))
			c.hHops.Observe(float64(rep.Forwards))
			if c.tel.Tracer != nil {
				c.tel.Tracer.Complete(telemetry.PIDClients, c.ID, "op",
					c.inflightOp.Type.String()+" "+c.inflightOp.Path,
					c.inflightAt, lat,
					telemetry.Arg{Key: "trace", Val: uint64(c.ID)<<32 | rep.ReqID},
					telemetry.Arg{Key: "served", Val: int64(rep.Served)},
					telemetry.Arg{Key: "forwards", Val: int64(rep.Forwards)})
			}
		}
		if c.OnComplete != nil {
			c.OnComplete(c, c.inflightOp, rep.Served, lat)
		}
	}
	c.retries = 0
	if c.cfg.ThinkTime > 0 {
		c.engine.Schedule(c.cfg.ThinkTime, c.issueNext)
	} else {
		c.issueNext()
	}
}

// learn folds a routing hint into the client's mapping, evicting the
// least-recently-learned entry when the cache is bounded.
func (c *Client) learn(h mds.Hint) {
	c.ageTick++
	c.hintAge[h.DirPath] = c.ageTick
	if len(h.Frags) > 0 {
		c.frags[h.DirPath] = h.Frags
		c.subtree[h.DirPath] = h.Rank
	} else {
		delete(c.frags, h.DirPath)
		c.subtree[h.DirPath] = h.Rank
	}
	if c.cfg.HintCapacity > 0 {
		for len(c.subtree) > c.cfg.HintCapacity {
			oldest := ""
			var oldestAge uint64
			for k := range c.subtree {
				if k == "/" || k == h.DirPath {
					continue
				}
				if age := c.hintAge[k]; oldest == "" || age < oldestAge {
					oldest, oldestAge = k, age
				}
			}
			if oldest == "" {
				break
			}
			delete(c.subtree, oldest)
			delete(c.frags, oldest)
			delete(c.hintAge, oldest)
		}
	}
}

// KnownSubtrees reports how many routing entries the client holds.
func (c *Client) KnownSubtrees() int { return len(c.subtree) }

// ResetRouting clears learned hints (a fresh mount between phases).
func (c *Client) ResetRouting() {
	c.subtree = map[string]namespace.Rank{"/": 0}
	c.frags = map[string][]mds.FragHint{}
	c.hintAge = map[string]uint64{}
}
