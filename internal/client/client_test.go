package client

import (
	"testing"

	"mantle/internal/mds"
	"mantle/internal/namespace"
	"mantle/internal/sim"
	"mantle/internal/simnet"
	"mantle/internal/workload"
)

// fakeMDS replies to every request with a configurable hint set and error.
type fakeMDS struct {
	net     *simnet.Network
	addr    simnet.Addr
	rank    namespace.Rank
	hints   []mds.Hint
	errFor  map[string]string
	served  []string
	replyFn func(req *mds.Request) *mds.Reply
}

func (f *fakeMDS) HandleMessage(from simnet.Addr, msg simnet.Message) {
	req, ok := msg.(*mds.Request)
	if !ok {
		return
	}
	f.served = append(f.served, req.Path)
	var rep *mds.Reply
	if f.replyFn != nil {
		rep = f.replyFn(req)
	} else {
		rep = &mds.Reply{ReqID: req.ID, Served: f.rank, Hints: f.hints}
		if e, bad := f.errFor[req.Path]; bad {
			rep.Err = e
		}
	}
	f.net.Send(f.addr, req.Client, rep)
}

func newRig(t *testing.T, nMDS int) (*sim.Engine, *simnet.Network, []*fakeMDS, []simnet.Addr) {
	t.Helper()
	e := sim.NewEngine(1)
	n := simnet.New(e, simnet.Config{Latency: 50})
	var mdss []*fakeMDS
	var addrs []simnet.Addr
	for r := 0; r < nMDS; r++ {
		f := &fakeMDS{net: n, addr: simnet.Addr(r), rank: namespace.Rank(r)}
		n.Register(f.addr, f)
		mdss = append(mdss, f)
		addrs = append(addrs, f.addr)
	}
	return e, n, mdss, addrs
}

func ops(paths ...string) workload.Generator {
	var out []workload.Op
	for _, p := range paths {
		out = append(out, workload.Op{Type: mds.OpCreate, Path: p})
	}
	return &workload.SliceGen{Ops: out}
}

func TestClosedLoopCompletes(t *testing.T) {
	e, n, mdss, addrs := newRig(t, 1)
	c := New(0, simnet.Addr(100), e, n, DefaultConfig(), ops("/a", "/b", "/c"), addrs)
	doneCalled := false
	c.OnDone = func(*Client) { doneCalled = true }
	c.Start()
	e.RunUntilIdle()
	if !c.Done() || !doneCalled {
		t.Fatal("client not done")
	}
	if c.Completed != 3 || c.Errors != 0 {
		t.Fatalf("completed=%d errors=%d", c.Completed, c.Errors)
	}
	if len(mdss[0].served) != 3 {
		t.Fatalf("served = %v", mdss[0].served)
	}
	if c.Latency.N() != 3 || c.Latency.Mean() <= 0 {
		t.Fatal("latency not recorded")
	}
	if c.DoneAt <= 0 {
		t.Fatal("DoneAt unset")
	}
}

func TestDefaultRoutingGoesToRank0(t *testing.T) {
	e, n, mdss, addrs := newRig(t, 3)
	c := New(0, simnet.Addr(100), e, n, DefaultConfig(), ops("/x/y"), addrs)
	c.Start()
	e.RunUntilIdle()
	if len(mdss[0].served) != 1 || len(mdss[1].served) != 0 {
		t.Fatal("default route must be rank 0")
	}
}

func TestLearnsSubtreeHints(t *testing.T) {
	e, n, mdss, addrs := newRig(t, 2)
	// Rank 0 replies with a hint pointing /sub to rank 1.
	mdss[0].hints = []mds.Hint{{DirPath: "/sub", Rank: 1}}
	mdss[1].hints = []mds.Hint{{DirPath: "/sub", Rank: 1}}
	c := New(0, simnet.Addr(100), e, n, DefaultConfig(),
		ops("/sub/a", "/sub/b", "/other/c"), addrs)
	c.Start()
	e.RunUntilIdle()
	// First op goes to rank 0 (default), learns, second goes to rank 1;
	// /other/c falls back to rank 0 (prefix doesn't match).
	if len(mdss[1].served) != 1 || mdss[1].served[0] != "/sub/b" {
		t.Fatalf("rank1 served %v", mdss[1].served)
	}
	if len(mdss[0].served) != 2 {
		t.Fatalf("rank0 served %v", mdss[0].served)
	}
	if c.KnownSubtrees() < 2 {
		t.Fatal("hint not learned")
	}
}

func TestLongestPrefixWins(t *testing.T) {
	e, n, mdss, addrs := newRig(t, 3)
	c := New(0, simnet.Addr(100), e, n, DefaultConfig(), ops("/a/b/f"), addrs)
	c.learn(mds.Hint{DirPath: "/a", Rank: 1})
	c.learn(mds.Hint{DirPath: "/a/b", Rank: 2})
	c.Start()
	e.RunUntilIdle()
	if len(mdss[2].served) != 1 {
		t.Fatalf("longest prefix ignored: %v %v %v", mdss[0].served, mdss[1].served, mdss[2].served)
	}
}

func TestPrefixMatchesWholeComponentsOnly(t *testing.T) {
	e, n, mdss, addrs := newRig(t, 2)
	c := New(0, simnet.Addr(100), e, n, DefaultConfig(), ops("/abc/f"), addrs)
	c.learn(mds.Hint{DirPath: "/ab", Rank: 1}) // must NOT match /abc
	c.Start()
	e.RunUntilIdle()
	if len(mdss[1].served) != 0 {
		t.Fatal("/ab matched /abc")
	}
	_ = mdss
}

func TestFragRouting(t *testing.T) {
	e, n, mdss, addrs := newRig(t, 2)
	kids := namespace.RootFrag.Split(1)
	var g []workload.Op
	for i := 0; i < 40; i++ {
		g = append(g, workload.Op{Type: mds.OpCreate, Path: "/d/" + string(rune('a'+i%26)) + string(rune('a'+i/26))})
	}
	c := New(0, simnet.Addr(100), e, n, DefaultConfig(), &workload.SliceGen{Ops: g}, addrs)
	c.learn(mds.Hint{DirPath: "/d", Rank: 0, Frags: []mds.FragHint{
		{Frag: kids[0], Rank: 0},
		{Frag: kids[1], Rank: 1},
	}})
	c.Start()
	e.RunUntilIdle()
	if len(mdss[0].served) == 0 || len(mdss[1].served) == 0 {
		t.Fatalf("frag routing not splitting: %d/%d", len(mdss[0].served), len(mdss[1].served))
	}
	// Every op went to the rank owning its name's fragment.
	for _, p := range mdss[1].served {
		_, name := splitPath(p)
		if !kids[1].ContainsName(name) {
			t.Fatalf("%s routed to rank 1 but not in frag", p)
		}
	}
}

func TestFragHintClearedBySubtreeHint(t *testing.T) {
	e, n, _, addrs := newRig(t, 2)
	c := New(0, simnet.Addr(100), e, n, DefaultConfig(), ops(), addrs)
	kids := namespace.RootFrag.Split(1)
	c.learn(mds.Hint{DirPath: "/d", Rank: 0, Frags: []mds.FragHint{{Frag: kids[0], Rank: 0}, {Frag: kids[1], Rank: 1}}})
	if len(c.frags) != 1 {
		t.Fatal("frag hint not stored")
	}
	c.learn(mds.Hint{DirPath: "/d", Rank: 1})
	if len(c.frags) != 0 {
		t.Fatal("frag hint not cleared by plain hint")
	}
	_ = e
}

func TestErrorsCountedAndRetries(t *testing.T) {
	e, n, mdss, addrs := newRig(t, 1)
	mdss[0].errFor = map[string]string{"/bad": "no such dir"}
	cfg := DefaultConfig()
	c := New(0, simnet.Addr(100), e, n, cfg, ops("/bad", "/ok"), addrs)
	c.Start()
	e.RunUntilIdle()
	if c.Errors != 1 || c.Completed != 1 {
		t.Fatalf("errors=%d completed=%d", c.Errors, c.Completed)
	}
	// With retries enabled, the op is re-sent.
	e2, n2, mdss2, addrs2 := newRig(t, 1)
	tries := 0
	mdss2[0].replyFn = func(req *mds.Request) *mds.Reply {
		rep := &mds.Reply{ReqID: req.ID, Served: 0}
		if req.Path == "/flaky" {
			tries++
			if tries < 3 {
				rep.Err = "transient"
			}
		}
		return rep
	}
	cfg2 := DefaultConfig()
	cfg2.MaxRetries = 5
	c2 := New(0, simnet.Addr(100), e2, n2, cfg2, ops("/flaky"), addrs2)
	c2.Start()
	e2.RunUntilIdle()
	if !c2.Done() || tries != 3 {
		t.Fatalf("done=%v tries=%d", c2.Done(), tries)
	}
	if c2.Completed != 1 {
		t.Fatalf("completed = %d", c2.Completed)
	}
}

func TestSessionFlushStallsIssue(t *testing.T) {
	e, n, mdss, addrs := newRig(t, 1)
	cfg := DefaultConfig()
	cfg.FlushStall = 10 * sim.Millisecond
	cfg.ThinkTime = 0
	c := New(0, simnet.Addr(100), e, n, cfg, ops("/a", "/b"), addrs)
	// Delay the first reply and inject a flush before it lands.
	c.Start()
	n.Send(mdss[0].addr, c.Addr(), &mds.SessionFlush{From: 0})
	e.RunUntilIdle()
	if c.SessionFlushes != 1 {
		t.Fatalf("flushes = %d", c.SessionFlushes)
	}
	if !c.Done() {
		t.Fatal("not done")
	}
	// The second op must have been issued at or after the stall window.
	if c.DoneAt < 10*sim.Millisecond {
		t.Fatalf("DoneAt = %v, stall not applied", c.DoneAt)
	}
}

func TestForwardAccounting(t *testing.T) {
	e, n, mdss, addrs := newRig(t, 1)
	mdss[0].replyFn = func(req *mds.Request) *mds.Reply {
		return &mds.Reply{ReqID: req.ID, Served: 0, Forwards: 2}
	}
	c := New(0, simnet.Addr(100), e, n, DefaultConfig(), ops("/a"), addrs)
	c.Start()
	e.RunUntilIdle()
	if c.ForwardedOps != 1 || c.TotalForwards != 2 {
		t.Fatalf("fops=%d total=%d", c.ForwardedOps, c.TotalForwards)
	}
}

func TestStaleReplyIgnored(t *testing.T) {
	e, n, _, addrs := newRig(t, 1)
	c := New(0, simnet.Addr(100), e, n, DefaultConfig(), ops("/a"), addrs)
	c.Start()
	// A reply with a wrong ID must be dropped.
	n.Send(addrs[0], c.Addr(), &mds.Reply{ReqID: 999})
	e.RunUntilIdle()
	if c.Completed != 1 {
		t.Fatalf("completed = %d", c.Completed)
	}
}

func TestResetRouting(t *testing.T) {
	e, n, _, addrs := newRig(t, 2)
	c := New(0, simnet.Addr(100), e, n, DefaultConfig(), ops(), addrs)
	c.learn(mds.Hint{DirPath: "/a", Rank: 1})
	c.ResetRouting()
	if c.KnownSubtrees() != 1 {
		t.Fatalf("subtrees = %d", c.KnownSubtrees())
	}
	_ = e
}

func TestSplitPath(t *testing.T) {
	cases := []struct{ in, dir, name string }{
		{"/", "/", ""},
		{"/a", "/", "a"},
		{"/a/b", "/a", "b"},
		{"/a/b/", "/a", "b"},
		{"/a/b/c.txt", "/a/b", "c.txt"},
	}
	for _, cse := range cases {
		d, n := splitPath(cse.in)
		if d != cse.dir || n != cse.name {
			t.Errorf("splitPath(%q) = %q,%q want %q,%q", cse.in, d, n, cse.dir, cse.name)
		}
	}
}

func TestClampRank(t *testing.T) {
	e, n, _, addrs := newRig(t, 2)
	c := New(0, simnet.Addr(100), e, n, DefaultConfig(), ops(), addrs)
	if c.clampRank(5) != 0 || c.clampRank(-1) != 0 || c.clampRank(1) != 1 {
		t.Fatal("clamp broken")
	}
}

func TestRequestTimeoutResends(t *testing.T) {
	e, n, mdss, addrs := newRig(t, 1)
	// Drop the first two requests (no reply), answer afterwards.
	dropped := 0
	mdss[0].replyFn = func(req *mds.Request) *mds.Reply {
		if dropped < 2 {
			dropped++
			return nil // swallowed below
		}
		return &mds.Reply{ReqID: req.ID, Served: 0}
	}
	// Wrap the fake MDS to suppress nil replies.
	n.Unregister(addrs[0])
	n.Register(addrs[0], simnet.HandlerFunc(func(from simnet.Addr, msg simnet.Message) {
		req := msg.(*mds.Request)
		rep := mdss[0].replyFn(req)
		if rep != nil {
			n.Send(addrs[0], req.Client, rep)
		}
	}))
	cfg := DefaultConfig()
	cfg.RequestTimeout = 50 * sim.Millisecond
	c := New(0, simnet.Addr(100), e, n, cfg, ops("/a"), addrs)
	c.learn(mds.Hint{DirPath: "/x", Rank: 0}) // extra routing entry to be dropped
	c.Start()
	e.RunUntilIdle()
	if !c.Done() || c.Completed != 1 {
		t.Fatalf("done=%v completed=%d", c.Done(), c.Completed)
	}
	if c.Timeouts != 2 {
		t.Fatalf("timeouts = %d, want 2", c.Timeouts)
	}
	// Two consecutive timeouts reset the routing cache.
	if c.KnownSubtrees() != 2 { // "/" + hint learned from the final reply? no hints → just "/"
		if c.KnownSubtrees() != 1 {
			t.Fatalf("routing cache = %d entries", c.KnownSubtrees())
		}
	}
}

func TestStartJitterDelaysFirstOp(t *testing.T) {
	e, n, mdss, addrs := newRig(t, 1)
	cfg := DefaultConfig()
	cfg.StartJitter = 100 * sim.Millisecond
	c := New(0, simnet.Addr(100), e, n, cfg, ops("/a"), addrs)
	c.Start()
	e.RunUntilIdle()
	if !c.Done() {
		t.Fatal("not done")
	}
	if c.DoneAt < 100 { // jitter could be ~0; at least it must not panic
		t.Logf("jitter drew near zero: done at %v", c.DoneAt)
	}
	_ = mdss
}

func TestLearnEvictsLRU(t *testing.T) {
	e, n, _, addrs := newRig(t, 2)
	cfg := DefaultConfig()
	cfg.HintCapacity = 3
	c := New(0, simnet.Addr(100), e, n, cfg, ops(), addrs)
	c.learn(mds.Hint{DirPath: "/a", Rank: 1})
	c.learn(mds.Hint{DirPath: "/b", Rank: 1})
	c.learn(mds.Hint{DirPath: "/c", Rank: 1}) // "/"+3 > cap → evict /a
	if c.KnownSubtrees() != 3 {
		t.Fatalf("entries = %d, want 3 (cap)", c.KnownSubtrees())
	}
	if got := c.route(workload.Op{Type: mds.OpCreate, Path: "/a/f"}); got != 0 {
		t.Fatalf("evicted /a still routed to %d", got)
	}
	if got := c.route(workload.Op{Type: mds.OpCreate, Path: "/c/f"}); got != 1 {
		t.Fatalf("/c lost: routed to %d", got)
	}
	// Re-learning refreshes recency: /b is oldest now.
	c.learn(mds.Hint{DirPath: "/c", Rank: 1})
	c.learn(mds.Hint{DirPath: "/d", Rank: 1})
	if got := c.route(workload.Op{Type: mds.OpCreate, Path: "/b/f"}); got != 0 {
		t.Fatalf("LRU order wrong: /b still present")
	}
	_ = e
}

func TestRetryBudgetGivesUpCleanly(t *testing.T) {
	e, n, _, addrs := newRig(t, 1)
	n.Unregister(addrs[0]) // every request lands on a dead address
	cfg := DefaultConfig()
	cfg.RequestTimeout = sim.Second
	cfg.RetryBudget = 2
	c := New(0, simnet.Addr(100), e, n, cfg, ops("/a", "/b", "/c"), addrs)
	c.Start()
	e.RunUntilIdle()
	if !c.Done() {
		t.Fatal("client hung instead of failing cleanly")
	}
	if c.GaveUp != 3 || c.Errors != 3 || c.Completed != 0 {
		t.Fatalf("gaveUp=%d errors=%d completed=%d", c.GaveUp, c.Errors, c.Completed)
	}
	// Initial send plus RetryBudget resends per op, each timing out.
	if c.Timeouts != 9 {
		t.Fatalf("timeouts = %d, want 9", c.Timeouts)
	}
}

func TestBackoffSpreadsRetriesExponentially(t *testing.T) {
	e, n, _, addrs := newRig(t, 1)
	n.Unregister(addrs[0])
	var arrivals []sim.Time
	n.Register(simnet.Addr(0), simnet.HandlerFunc(func(from simnet.Addr, msg simnet.Message) {
		arrivals = append(arrivals, e.Now()) // swallow: never reply
	}))
	cfg := DefaultConfig()
	cfg.RequestTimeout = sim.Second
	cfg.RetryBudget = 4
	cfg.BackoffBase = 100 * sim.Millisecond
	cfg.BackoffMax = 400 * sim.Millisecond
	c := New(0, simnet.Addr(100), e, n, cfg, ops("/a"), addrs)
	c.Start()
	e.RunUntilIdle()
	if !c.Done() || c.GaveUp != 1 {
		t.Fatalf("done=%v gaveUp=%d", c.Done(), c.GaveUp)
	}
	if len(arrivals) != 5 { // initial + 4 retries
		t.Fatalf("arrivals = %d, want 5", len(arrivals))
	}
	// Gap k = timeout + backoff(k) with backoff doubling 100ms, 200ms,
	// 400ms, then capped at 400ms, each ±25% jitter.
	want := []sim.Time{100, 200, 400, 400}
	for k := 1; k < len(arrivals); k++ {
		gap := arrivals[k] - arrivals[k-1]
		lo := sim.Second + want[k-1]*sim.Millisecond*3/4
		hi := sim.Second + want[k-1]*sim.Millisecond*5/4
		if gap < lo || gap > hi {
			t.Fatalf("retry %d gap = %v, want in [%v, %v]", k, gap, lo, hi)
		}
	}
}

func TestLateReplyCancelsBackoffResend(t *testing.T) {
	e, n, _, addrs := newRig(t, 1)
	n.Unregister(addrs[0])
	var served int
	n.Register(simnet.Addr(0), simnet.HandlerFunc(func(from simnet.Addr, msg simnet.Message) {
		req := msg.(*mds.Request)
		served++
		// Reply slower than the request timeout but faster than the
		// pending backoff resend.
		e.Schedule(1500*sim.Millisecond, func() {
			n.Send(simnet.Addr(0), req.Client, &mds.Reply{ReqID: req.ID, Served: 0})
		})
	}))
	cfg := DefaultConfig()
	cfg.RequestTimeout = sim.Second
	cfg.BackoffBase = 10 * sim.Second
	c := New(0, simnet.Addr(100), e, n, cfg, ops("/a", "/b"), addrs)
	c.Start()
	e.RunUntilIdle()
	if !c.Done() || c.Completed != 2 {
		t.Fatalf("done=%v completed=%d", c.Done(), c.Completed)
	}
	// Each op was sent exactly once: the late reply beat the backoff and
	// cancelled the resend.
	if served != 2 {
		t.Fatalf("served = %d, want 2 (no duplicate resends)", served)
	}
	if c.Timeouts != 2 || c.GaveUp != 0 {
		t.Fatalf("timeouts=%d gaveUp=%d", c.Timeouts, c.GaveUp)
	}
}
