package core

import (
	"fmt"
	"sort"
)

// This file holds the paper's balancer policies as injectable Lua scripts —
// Listings 1–4 and the Table 1 original. They differ from the paper's text
// only where the listings are abbreviated pseudocode:
//
//   - array indexing is guarded so the last rank does not index MDSs[n+1],
//   - Listing 2's half-way arithmetic gets an explicit math.floor (Lua
//     division is floating point),
//   - Listing 2's idle-search comparison reads ["load"] explicitly,
//   - Listing 4's `max` accumulator is renamed so it does not shadow the
//     max() helper from the Mantle environment.

// DefaultPolicy returns the original CephFS balancer of Table 1 expressed
// as Mantle scripts. Hooks left empty in an injected Policy fall back to
// these.
func DefaultPolicy() Policy {
	return Policy{
		Name:     "cephfs_original",
		MetaLoad: `IRD + 2*IWR + READDIR + 2*FETCH + 4*STORE`,
		MDSLoad:  `0.8*MDSs[i]["auth"] + 0.2*MDSs[i]["all"] + MDSs[i]["req"] + 10*MDSs[i]["q"]`,
		When:     `if total >= 1 and MDSs[whoami]["load"] > total/#MDSs then`,
		Where: `
local mean = total/#MDSs
local my = MDSs[whoami]["load"]
local excess = my - mean
if excess > 0 then
  local deficit = 0
  for i = 1, #MDSs do
    if i ~= whoami and MDSs[i]["load"] < mean then
      deficit = deficit + (mean - MDSs[i]["load"])
    end
  end
  if deficit > 0 then
    local scale = excess / deficit
    if scale > 1 then scale = 1 end
    for i = 1, #MDSs do
      if i ~= whoami and MDSs[i]["load"] < mean then
        targets[i] = (mean - MDSs[i]["load"]) * scale * 0.8
      end
    end
  end
end`,
		HowMuch: `{"big_first"}`,
	}
}

// GreedySpillPolicy is Listing 1: spill half of everything to the next rank
// as soon as it is idle.
func GreedySpillPolicy() Policy {
	return Policy{
		Name:     "greedy_spill",
		MetaLoad: `IWR`,
		MDSLoad:  `MDSs[i]["all"]`,
		When: `if whoami < #MDSs and MDSs[whoami]["load"] > .01 and
   MDSs[whoami+1]["load"] < .01 then`,
		Where:   `targets[whoami+1] = allmetaload/2`,
		HowMuch: `{"half"}`,
	}
}

// GreedySpillEvenPolicy is Listing 2: search half-way across the cluster
// for an idle MDS so the load disseminates evenly.
func GreedySpillEvenPolicy() Policy {
	return Policy{
		Name:     "greedy_spill_even",
		MetaLoad: `IWR`,
		MDSLoad:  `MDSs[i]["all"]`,
		When: `
t = math.floor((#MDSs - whoami + 1)/2) + whoami
if t > #MDSs then t = whoami end
while t ~= whoami and MDSs[t]["load"] >= .01 do t = t - 1 end
if t ~= whoami and MDSs[whoami]["load"] > .01 and
   MDSs[t]["load"] < .01 then`,
		Where:   `targets[t] = MDSs[whoami]["load"]/2`,
		HowMuch: `{"half"}`,
	}
}

// FillAndSpillPolicy is Listing 3: fill one MDS to its known capacity
// (instantaneous CPU over threshold for three straight iterations,
// remembered via WRstate/RDstate), then spill a quarter of the load to the
// neighbour. The paper's threshold was 48% from its capacity study; ours is
// 85%, from the same study run on this simulator's cost model (see
// EXPERIMENTS.md, Figure 5).
func FillAndSpillPolicy() Policy {
	return Policy{
		Name:     "fill_and_spill",
		MetaLoad: `IRD + IWR`,
		MDSLoad:  `MDSs[i]["all"]`,
		When: `
local wait = RDState() or 2
go = 0
if MDSs[whoami]["cpu"] > 85 then
  if wait > 0 then WRState(wait-1)
  else WRState(2) go = 1 end
else WRState(2) end
if go == 1 and whoami < #MDSs then`,
		Where:   `targets[whoami+1] = MDSs[whoami]["load"]/4`,
		HowMuch: `{"small_first","big_small","big_first"}`,
	}
}

// FillAndSpillPolicyWithFraction varies the spilled share (the paper
// compares 10%, 25% and 50% spills in Figure 8).
func FillAndSpillPolicyWithFraction(frac float64) Policy {
	p := FillAndSpillPolicy()
	p.Name = fmt.Sprintf("fill_and_spill_%d", int(frac*100+0.5))
	p.Where = fmt.Sprintf(`targets[whoami+1] = MDSs[whoami]["load"]*%g`, frac)
	return p
}

// AdaptablePolicy is Listing 4: one exporter at a time, triggered only when
// it holds the majority of the cluster load; underloaded ranks are filled to
// the mean, trying the full selector toolbox.
func AdaptablePolicy() Policy {
	return Policy{
		Name:     "adaptable",
		MetaLoad: `IWR + IRD`,
		MDSLoad:  `MDSs[i]["all"]`,
		When: `
local biggest = 0
for i = 1, #MDSs do
  biggest = max(MDSs[i]["load"], biggest)
end
myLoad = MDSs[whoami]["load"]
if myLoad > total/2 and myLoad >= biggest then`,
		Where: `
local targetLoad = total/#MDSs
for i = 1, #MDSs do
  if i ~= whoami and MDSs[i]["load"] < targetLoad then
    targets[i] = targetLoad - MDSs[i]["load"]
  end
end`,
		HowMuch: `{"half","small","big","big_small"}`,
	}
}

// ConservativePolicy is the Figure 10 top-graph variant: Listing 4 plus a
// minimum-offload floor so nothing moves until one MDS is severely loaded.
func ConservativePolicy(minOffload float64) Policy {
	p := AdaptablePolicy()
	p.Name = "adaptable_conservative"
	p.When = fmt.Sprintf(`
local biggest = 0
for i = 1, #MDSs do
  biggest = max(MDSs[i]["load"], biggest)
end
myLoad = MDSs[whoami]["load"]
if myLoad > %g and myLoad > total/2 and myLoad >= biggest then`, minOffload)
	return p
}

// TooAggressivePolicy is the Figure 10 bottom-graph variant: chase perfect
// balance on any deviation from the mean.
func TooAggressivePolicy() Policy {
	p := AdaptablePolicy()
	p.Name = "adaptable_too_aggressive"
	p.When = `if total > 0 and MDSs[whoami]["load"] > total/#MDSs then`
	return p
}

// FeedbackPolicy is a proportional-controller balancer — the "control
// feedback loops" direction §4.4 lists as future work. The spill fraction
// itself is the controlled variable: each round the policy measures how far
// above the cluster mean it still is and nudges the remembered fraction
// toward that error, so persistent overload escalates the spill and
// successful sheds wind it back down. State lives in WRstate/RDstate.
func FeedbackPolicy() Policy {
	return Policy{
		Name:     "feedback",
		MetaLoad: `IWR + IRD`,
		MDSLoad:  `MDSs[i]["all"]`,
		When:     `if total >= 1 and MDSs[whoami]["load"] > (total/#MDSs)*1.1 then`,
		Where: `
local frac = RDstate() or 0.1
local mean = total/#MDSs
local mine = MDSs[whoami]["load"]
local err = (mine - mean) / max(mine, 1)
frac = min(0.5, max(0.05, frac + 0.5*(err - frac)))
WRstate(frac)
local best, bestLoad = nil, nil
for i = 1, #MDSs do
  if i ~= whoami and (best == nil or MDSs[i]["load"] < bestLoad) then
    best, bestLoad = i, MDSs[i]["load"]
  end
end
if best ~= nil then
  targets[best] = mine * frac
end`,
		HowMuch: `{"big_small","small_first","big_first"}`,
	}
}

// CoalescePolicy brings metadata home after a flash crowd — §3 notes the
// hard-coded policies "make it harder to coalesce the metadata back to one
// server after the flash crowd". A non-zero rank whose load has been tiny
// for two straight rounds sends everything it owns back to rank 1 (the
// paper's 1-based numbering; rank 0 here).
func CoalescePolicy(idleThreshold float64) Policy {
	return Policy{
		Name:     "coalesce_home",
		MetaLoad: `IWR + IRD`,
		MDSLoad:  `MDSs[i]["all"]`,
		When: fmt.Sprintf(`
if whoami == 1 then return false end
local calm = RDstate() or 0
if MDSs[whoami]["load"] < %g and MDSs[whoami]["load"] > 0 then
  if calm >= 1 then WRstate(0) return true end
  WRstate(calm + 1)
else
  WRstate(0)
end
return false`, idleThreshold),
		Where:   `targets[1] = MDSs[whoami]["load"]`,
		HowMuch: `{"big_first","half"}`,
	}
}

// BrokenPolicy returns a deliberately faulty balancer version for fault
// injection — the untrusted-script scenario §3 versions balancers against.
// Mode "error" raises a Lua runtime error from the when hook; mode "garbage"
// compiles and runs cleanly but emits absurd targets (orders of magnitude
// more load than the cluster holds), which only target sanity checks catch.
// These policies intentionally fail core.Validate; inject them without
// linting, as a hostile or buggy operator would.
func BrokenPolicy(mode string) Policy {
	p := DefaultPolicy()
	p.Name = "broken_" + mode
	switch mode {
	case "error":
		p.When = `return nil + 1`
	case "garbage":
		p.When = `if total >= 0 then`
		p.Where = `
for i = 1, #MDSs do
  if i ~= whoami then targets[i] = total*1000 + 1000000 end
end`
	default:
		panic(fmt.Sprintf("core: unknown broken-policy mode %q", mode))
	}
	return p
}

// Policies returns the named built-in policy set (for the CLI tools).
func Policies() map[string]Policy {
	return map[string]Policy{
		"cephfs_original":          DefaultPolicy(),
		"feedback":                 FeedbackPolicy(),
		"coalesce_home":            CoalescePolicy(10),
		"greedy_spill":             GreedySpillPolicy(),
		"greedy_spill_even":        GreedySpillEvenPolicy(),
		"fill_and_spill":           FillAndSpillPolicy(),
		"adaptable":                AdaptablePolicy(),
		"adaptable_conservative":   ConservativePolicy(100),
		"adaptable_too_aggressive": TooAggressivePolicy(),
	}
}

// PolicyNames lists the built-in policy names in sorted order.
func PolicyNames() []string {
	m := Policies()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
