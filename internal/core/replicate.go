package core

import (
	"fmt"
	"strings"

	"mantle/internal/balancer"
	"mantle/internal/lua"
)

// The when_replicate hook extends the programmable surface to hotspot
// mitigation: where when/where/howmuch move authority between ranks,
// when_replicate decides whether a read-hot directory should additionally be
// served from read replicas on peer ranks — and when those replicas should
// be torn down again. The authoritative rank evaluates it per hot-directory
// candidate on every balancer epoch.
//
// Environment:
//
//	whoami            evaluating rank, 1-based like the Table 2 env
//	active            number of active ranks
//	max_replicas      configured ceiling on replicas per directory
//	total             cluster-wide metadata load
//	MDSs[i]           per rank, 1-based:
//	  ["auth"|"all"|"cpu"|"mem"|"q"|"req"|"load"]
//	path              candidate directory path
//	heat              candidate's metadata load (decay counters)
//	rd                candidate's read rate (inode reads + readdirs)
//	wr                candidate's write rate (inode writes)
//	replicas          replicas currently granted for the candidate
//	WRstate/RDstate   persistent scratch, as in the balancing hooks
//
// The hook returns a number: > 0 grants one more replica, < 0 revokes the
// candidate's replicas, 0 (or nil) holds. Placement (which peer receives
// the grant) stays with the runtime — the hook decides *whether*, the
// least-loaded active peer receives.

// Replicate hook verdicts.
const (
	ReplicateHold   = 0
	ReplicateGrant  = 1
	ReplicateRevoke = -1
)

// DefaultReplicateScript is the built-in when_replicate policy: replicate a
// directory whose load is well above its fair share and read-dominated;
// revoke once it cools off or writes pick up (each write pays a revoke round
// trip, so a write-heavy replica is pure cost).
const DefaultReplicateScript = `
local mean = total / active
if replicas > 0 and (heat < mean / 2 or wr * 2 > rd) then
	return -1
end
if replicas < max_replicas and heat > 2 * mean and rd > 4 * wr then
	return 1
end
return 0`

// ReplicateHook is a compiled when_replicate script. Like ElasticHook it
// owns its VM: each rank holds its own hook, and evaluation never races the
// rank's balancing hooks (both run on the rank's execution lane, but the
// VMs share no tables).
type ReplicateHook struct {
	vm    *lua.VM
	chunk *lua.Chunk
	state balancer.StateStore

	envMDSs  *lua.Table
	envRanks []*lua.Table

	// HookErrors counts runtime failures, mirroring LuaBalancer.
	HookErrors int
}

// NewReplicateHook compiles src (empty = DefaultReplicateScript).
func NewReplicateHook(src string, opts Options) (*ReplicateHook, error) {
	if strings.TrimSpace(src) == "" {
		src = DefaultReplicateScript
	}
	h := &ReplicateHook{vm: lua.NewVM(), state: &balancer.MemState{}}
	if opts.MaxSteps > 0 {
		h.vm.MaxSteps = opts.MaxSteps
	} else {
		h.vm.MaxSteps = DefaultMaxSteps
	}
	chunk, err := lua.CompileExprOrChunk("when_replicate", src)
	if err != nil {
		return nil, fmt.Errorf("mantle: compile when_replicate: %w", err)
	}
	h.chunk = chunk
	write := lua.GoFunc(func(args []lua.Value) ([]lua.Value, error) {
		if len(args) == 0 {
			h.state.Write(nil)
		} else {
			h.state.Write(args[0])
		}
		return nil, nil
	})
	read := lua.GoFunc(func(args []lua.Value) ([]lua.Value, error) {
		v := h.state.Read()
		if v == nil {
			return []lua.Value{nil}, nil
		}
		return []lua.Value{v}, nil
	})
	for _, n := range []string{"WRstate", "WRState"} {
		h.vm.Globals.SetString(n, write)
	}
	for _, n := range []string{"RDstate", "RDState"} {
		h.vm.Globals.SetString(n, read)
	}
	return h, nil
}

// Eval runs the hook and reports ReplicateGrant, ReplicateRevoke or
// ReplicateHold. Non-zero magnitudes collapse to one step: replicas are
// granted one per epoch so every placement reacts to the previous one's
// effect on the load map.
func (h *ReplicateHook) Eval(e balancer.ReplicaEnv) (int, error) {
	h.bind(e)
	vals, err := h.vm.Run(h.chunk)
	if err != nil {
		h.HookErrors++
		return ReplicateHold, fmt.Errorf("mantle: when_replicate: %w", err)
	}
	if len(vals) == 0 || vals[0] == nil {
		return ReplicateHold, nil
	}
	n, ok := lua.Number(vals[0])
	if !ok {
		h.HookErrors++
		return ReplicateHold, fmt.Errorf("mantle: when_replicate returned %v, want number", lua.TypeOf(vals[0]))
	}
	switch {
	case n > 0:
		return ReplicateGrant, nil
	case n < 0:
		return ReplicateRevoke, nil
	default:
		return ReplicateHold, nil
	}
}

// bind publishes the replicate environment, reusing cached tables like
// LuaBalancer.bindEnv.
func (h *ReplicateHook) bind(e balancer.ReplicaEnv) {
	g := h.vm.Globals
	g.SetString("whoami", lua.Box(float64(e.WhoAmI)+1))
	g.SetString("active", lua.Box(float64(e.Active)))
	g.SetString("max_replicas", lua.Box(float64(e.MaxReplicas)))
	g.SetString("total", lua.Box(e.Total))
	g.SetString("path", e.Path)
	g.SetString("heat", lua.Box(e.Heat))
	g.SetString("rd", lua.Box(e.Rd))
	g.SetString("wr", lua.Box(e.Wr))
	g.SetString("replicas", lua.Box(float64(e.Replicas)))
	if h.envMDSs == nil {
		h.envMDSs = lua.NewTable()
	}
	for i := len(h.envRanks); i > len(e.MDSs); i-- {
		h.envMDSs.SetInt(i, nil)
	}
	if len(h.envRanks) > len(e.MDSs) {
		h.envRanks = h.envRanks[:len(e.MDSs)]
	}
	for i, m := range e.MDSs {
		var mt *lua.Table
		if i < len(h.envRanks) {
			mt = h.envRanks[i]
		} else {
			mt = lua.NewTable()
			h.envRanks = append(h.envRanks, mt)
			h.envMDSs.SetInt(i+1, mt)
		}
		mt.SetString("auth", lua.Box(m.Auth))
		mt.SetString("all", lua.Box(m.All))
		mt.SetString("cpu", lua.Box(m.CPU))
		mt.SetString("mem", lua.Box(m.Mem))
		mt.SetString("q", lua.Box(m.Queue))
		mt.SetString("req", lua.Box(m.Req))
		mt.SetString("load", lua.Box(m.Load))
	}
	g.SetString("MDSs", h.envMDSs)
}

// syntheticReplicateEnvs is the validator's state spread for when_replicate:
// cold, read-hot, write-hot and mixed candidates, with and without existing
// replicas, across a few cluster sizes.
func syntheticReplicateEnvs() []balancer.ReplicaEnv {
	mk := func(loads ...float64) []balancer.MDSMetrics {
		out := make([]balancer.MDSMetrics, len(loads))
		var total float64
		for i, l := range loads {
			out[i] = balancer.MDSMetrics{Auth: l, All: l, Load: l, CPU: l, Mem: 10, Queue: l / 10, Req: l * 2}
			total += l
		}
		return out
	}
	sum := func(ms []balancer.MDSMetrics) float64 {
		var t float64
		for _, m := range ms {
			t += m.Load
		}
		return t
	}
	var envs []balancer.ReplicaEnv
	shapes := []struct {
		mdss     []balancer.MDSMetrics
		heat     float64
		rd, wr   float64
		replicas int
	}{
		{mk(0), 0, 0, 0, 0},
		{mk(100, 0), 90, 900, 10, 0},
		{mk(100, 0), 90, 900, 10, 1},
		{mk(50, 50, 50), 10, 50, 50, 0},
		{mk(80, 10, 10, 10), 70, 100, 600, 0},
		{mk(5, 5, 5, 5), 1, 4, 0, 2},
	}
	for _, s := range shapes {
		envs = append(envs, balancer.ReplicaEnv{
			WhoAmI: 0, Active: len(s.mdss), MaxReplicas: 2, Total: sum(s.mdss),
			MDSs: s.mdss, Path: "/hot", Heat: s.heat, Rd: s.rd, Wr: s.wr,
			Replicas: s.replicas,
		})
	}
	return envs
}

// validateReplicate dry-runs a when_replicate script and appends problems.
func validateReplicate(src string, add func(format string, args ...any)) {
	h, err := NewReplicateHook(src, Options{MaxSteps: 200_000})
	if err != nil {
		add("%s", err)
		return
	}
	for _, e := range syntheticReplicateEnvs() {
		if _, err := h.Eval(e); err != nil {
			add("%s (state: %d ranks, heat=%g)", err, e.Active, e.Heat)
		}
	}
}
