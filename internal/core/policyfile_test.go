package core

import (
	"strings"
	"testing"
)

const samplePolicyFile = `
-- a Greedy Spill policy in file form
-- [metaload]
IWR
-- [mdsload]
MDSs[i]["all"]
-- [when]
if whoami < #MDSs and MDSs[whoami]["load"] > .01 and
   MDSs[whoami+1]["load"] < .01 then
-- [where]
targets[whoami+1] = allmetaload/2
-- [howmuch]
{"half"}
`

func TestParsePolicyFile(t *testing.T) {
	p, err := ParsePolicyFile("gs", samplePolicyFile)
	if err != nil {
		t.Fatal(err)
	}
	if p.MetaLoad != "IWR" {
		t.Fatalf("metaload = %q", p.MetaLoad)
	}
	if !strings.Contains(p.When, "whoami+1") || !strings.HasSuffix(p.When, "then") {
		t.Fatalf("when = %q", p.When)
	}
	if p.HowMuch != `{"half"}` {
		t.Fatalf("howmuch = %q", p.HowMuch)
	}
	// The parsed policy compiles and validates.
	rep := Validate(p)
	if !rep.OK() {
		t.Fatalf("parsed policy invalid:\n%s", rep)
	}
}

func TestParsePolicyFileLongSectionNames(t *testing.T) {
	p, err := ParsePolicyFile("x", "-- [mds_bal_metaload]\nIRD\n-- [mds_bal_when]\ntrue")
	if err != nil || p.MetaLoad != "IRD" || p.When != "true" {
		t.Fatalf("p=%+v err=%v", p, err)
	}
}

func TestParsePolicyFileErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{"-- [bogus]\nx=1", "unknown section"},
		{"-- [when]\ntrue\n-- [when]\nfalse", "duplicate section"},
		{"x = 1\n-- [when]\ntrue", "before the first section"},
		{"-- just a comment\n", "no section markers"},
		{"", "no section markers"},
	}
	for _, c := range cases {
		if _, err := ParsePolicyFile("t", c.src); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("ParsePolicyFile(%q) err = %v, want %q", c.src, err, c.frag)
		}
	}
}

func TestFormatPolicyFileRoundTrip(t *testing.T) {
	for name, p := range Policies() {
		text := FormatPolicyFile(p)
		back, err := ParsePolicyFile(name, text)
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", name, err, text)
		}
		back.Name = p.Name
		if back.MetaLoad != strings.TrimSpace(p.MetaLoad) ||
			back.When != strings.TrimSpace(p.When) ||
			back.Where != strings.TrimSpace(p.Where) ||
			back.HowMuch != strings.TrimSpace(p.HowMuch) {
			t.Fatalf("%s: round trip mismatch:\nwant %+v\ngot  %+v", name, p, back)
		}
	}
}

func TestSectionMarkerParsing(t *testing.T) {
	cases := []struct {
		line string
		name string
		ok   bool
	}{
		{"-- [when]", "when", true},
		{"--[when]", "when", true},
		{"--   [ WHEN ]", "when", true},
		{"-- when", "", false},
		{"[when]", "", false},
		{"-- [when] trailing", "", false},
	}
	for _, c := range cases {
		name, ok := parseSectionMarker(c.line)
		if ok != c.ok || (ok && name != c.name) {
			t.Errorf("parseSectionMarker(%q) = %q,%v want %q,%v", c.line, name, ok, c.name, c.ok)
		}
	}
}
