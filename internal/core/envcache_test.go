package core

import (
	"testing"

	"mantle/internal/balancer"
	"mantle/internal/namespace"
)

// The Table 2 environment is cached across hook invocations (only numeric
// fields are overwritten). These tests prove a long-lived balancer sees
// exactly what a freshly built one sees, including when the cluster grows
// or shrinks between heartbeats.

func envN(n int, bump float64) *balancer.Env {
	e := &balancer.Env{WhoAmI: 0, State: &balancer.MemState{}}
	for i := 0; i < n; i++ {
		load := float64(10*(n-i)) + bump
		e.MDSs = append(e.MDSs, balancer.MDSMetrics{
			Load: load, All: load, Auth: load / 2,
			CPU: 0.25, Mem: 0.5, Queue: float64(i), Req: 100 + load,
		})
		e.Total += load
	}
	return e
}

func decideAll(t *testing.T, b *LuaBalancer, e *balancer.Env) (bool, balancer.Targets, []string, []float64) {
	t.Helper()
	when, err := b.When(e)
	if err != nil {
		t.Fatal(err)
	}
	var targets balancer.Targets
	var sel []string
	if when {
		if targets, err = b.Where(e); err != nil {
			t.Fatal(err)
		}
		if sel, err = b.HowMuch(e); err != nil {
			t.Fatal(err)
		}
	}
	loads := make([]float64, len(e.MDSs))
	for i := range e.MDSs {
		l, err := b.MDSLoad(namespace.Rank(i), e)
		if err != nil {
			t.Fatal(err)
		}
		loads[i] = l
	}
	return when, targets, sel, loads
}

// TestEnvCacheMatchesFreshBalancer drives one balancer through a sequence
// of heartbeats with varying cluster sizes and loads, comparing every
// decision against a brand-new balancer evaluating the same Env.
func TestEnvCacheMatchesFreshBalancer(t *testing.T) {
	for _, name := range []string{"greedy_spill", "adaptable", "cephfs_original"} {
		p, ok := Policies()[name]
		if !ok {
			t.Fatalf("no policy %q", name)
		}
		cached, err := NewLuaBalancer(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Grow, shrink, regrow: 3 -> 5 -> 2 -> 4 ranks.
		for step, n := range []int{3, 5, 2, 4} {
			e := envN(n, float64(step)*0.37)
			fresh, err := NewLuaBalancer(p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			wantWhen, wantTargets, wantSel, wantLoads := decideAll(t, fresh, envN(n, float64(step)*0.37))
			gotWhen, gotTargets, gotSel, gotLoads := decideAll(t, cached, e)
			if gotWhen != wantWhen {
				t.Fatalf("%s step %d: when = %v, fresh balancer says %v", name, step, gotWhen, wantWhen)
			}
			if len(gotTargets) != len(wantTargets) {
				t.Fatalf("%s step %d: targets %v, want %v", name, step, gotTargets, wantTargets)
			}
			for r, amt := range wantTargets {
				if gotTargets[r] != amt {
					t.Fatalf("%s step %d: targets[%d] = %v, want %v", name, step, r, gotTargets[r], amt)
				}
			}
			if len(gotSel) != len(wantSel) {
				t.Fatalf("%s step %d: selectors %v, want %v", name, step, gotSel, wantSel)
			}
			for i := range wantSel {
				if gotSel[i] != wantSel[i] {
					t.Fatalf("%s step %d: selectors %v, want %v", name, step, gotSel, wantSel)
				}
			}
			for i := range wantLoads {
				if gotLoads[i] != wantLoads[i] {
					t.Fatalf("%s step %d: MDSLoad(%d) = %v, want %v", name, step, i, gotLoads[i], wantLoads[i])
				}
			}
		}
	}
}

// TestEnvShrinkDropsStaleRanks: after the cluster shrinks, a script must
// not see the departed rank's table lingering in MDSs.
func TestEnvShrinkDropsStaleRanks(t *testing.T) {
	b, err := NewLuaBalancer(Policy{
		Name: "count_ranks",
		When: "return #MDSs == expected and MDSs[#MDSs + 1] == nil",
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{5, 2, 3} {
		b.VM().Globals.SetString("expected", float64(n))
		ok, err := b.When(envN(n, 0))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("script saw wrong MDSs length after resize to %d", n)
		}
	}
}

// TestTargetsTableClearedBetweenInvocations: a where hook that writes only
// its own rank's target must not inherit entries from the previous
// invocation's table.
func TestTargetsTableClearedBetweenInvocations(t *testing.T) {
	b, err := NewLuaBalancer(Policy{
		Name:  "one_target",
		When:  "return true",
		Where: "targets[pick] = 1",
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := envN(3, 0)
	b.VM().Globals.SetString("pick", float64(2))
	first, err := b.Where(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 1 || first[namespace.Rank(1)] != 1 {
		t.Fatalf("first targets = %v", first)
	}
	b.VM().Globals.SetString("pick", float64(3))
	second, err := b.Where(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != 1 || second[namespace.Rank(2)] != 1 {
		t.Fatalf("stale targets leaked across invocations: %v", second)
	}
}
