package core

import (
	"strings"
	"testing"

	"mantle/internal/balancer"
)

func replicaEnv(heat, rd, wr float64, replicas int) balancer.ReplicaEnv {
	return balancer.ReplicaEnv{
		WhoAmI:      0,
		Active:      3,
		MaxReplicas: 2,
		Total:       300,
		MDSs: []balancer.MDSMetrics{
			{Load: 200}, {Load: 60}, {Load: 40},
		},
		Path:     "/hot",
		Heat:     heat,
		Rd:       rd,
		Wr:       wr,
		Replicas: replicas,
	}
}

func TestDefaultReplicateVerdicts(t *testing.T) {
	hook, err := NewReplicateHook("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Read-hot fragment well above the mean, no replicas yet: grant.
	v, err := hook.Eval(replicaEnv(250, 1000, 10, 0))
	if err != nil {
		t.Fatal(err)
	}
	if v != ReplicateGrant {
		t.Fatalf("hot read env verdict = %d, want grant", v)
	}
	// Cooled-off fragment still holding a replica: revoke.
	v, err = hook.Eval(replicaEnv(10, 50, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if v != ReplicateRevoke {
		t.Fatalf("cold env verdict = %d, want revoke", v)
	}
	// Write-heavy fragment: never grant (revoke-per-write would thrash).
	v, err = hook.Eval(replicaEnv(250, 100, 200, 0))
	if err != nil {
		t.Fatal(err)
	}
	if v == ReplicateGrant {
		t.Fatal("write-heavy env granted a replica")
	}
	// At the replica cap: hold.
	v, err = hook.Eval(replicaEnv(250, 1000, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	if v == ReplicateGrant {
		t.Fatal("granted past max_replicas")
	}
}

func TestCustomReplicateScript(t *testing.T) {
	hook, err := NewReplicateHook("return heat > 100 and 1 or 0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := hook.Eval(replicaEnv(250, 10, 1, 0)); v != ReplicateGrant {
		t.Fatalf("verdict = %d, want grant", v)
	}
	if v, _ := hook.Eval(replicaEnv(50, 10, 1, 0)); v != ReplicateHold {
		t.Fatalf("verdict = %d, want hold", v)
	}
}

func TestReplicatePolicyFileSection(t *testing.T) {
	src := `-- [when]
return true
-- [when_replicate]
return replicas < max_replicas and 1 or 0
`
	p, err := ParsePolicyFile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.WhenReplicate, "max_replicas") {
		t.Fatalf("WhenReplicate not parsed: %q", p.WhenReplicate)
	}
	out := FormatPolicyFile(p)
	rt, err := ParsePolicyFile("t", out)
	if err != nil {
		t.Fatal(err)
	}
	if rt.WhenReplicate != p.WhenReplicate {
		t.Fatalf("roundtrip lost when_replicate: %q vs %q", rt.WhenReplicate, p.WhenReplicate)
	}
}

func TestValidateCatchesBadReplicateHook(t *testing.T) {
	p := Policy{Name: "bad", WhenReplicate: "return ("}
	if rep := Validate(p); rep.OK() {
		t.Fatal("validate accepted a syntactically broken when_replicate")
	}
	good := Policy{Name: "good", WhenReplicate: DefaultReplicateScript}
	if rep := Validate(good); !rep.OK() {
		t.Fatalf("validate rejected the default script: %s", rep)
	}
}
