package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The policies/ directory ships every built-in policy in injectable file
// form. This test keeps the files parseable, valid, and in sync with the
// in-code definitions.
func TestShippedPolicyFiles(t *testing.T) {
	dir := filepath.Join("..", "..", "policies")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Skipf("policies dir unavailable: %v", err)
	}
	builtins := Policies()
	seen := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".lua") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".lua")
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		p, rep, err := CheckPolicyFile(name, string(data))
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		if !rep.OK() {
			t.Errorf("%s failed validation:\n%s", e.Name(), rep)
		}
		builtin, ok := builtins[name]
		if !ok {
			continue // custom example policies are fine
		}
		seen++
		if strings.TrimSpace(p.When) != strings.TrimSpace(builtin.When) ||
			strings.TrimSpace(p.Where) != strings.TrimSpace(builtin.Where) {
			t.Errorf("%s drifted from the built-in definition; regenerate with `mantle-policy show %s`", e.Name(), name)
		}
	}
	if seen != len(builtins) {
		t.Errorf("policies/ has %d of %d built-ins; regenerate missing ones", seen, len(builtins))
	}
}
