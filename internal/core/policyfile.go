package core

import (
	"fmt"
	"strings"
)

// Policy files hold all five hooks in one Lua file, separated by section
// markers that are themselves Lua comments, so the file is valid Lua to
// external tooling:
//
//	-- [metaload]
//	IWR
//	-- [mdsload]
//	MDSs[i]["all"]
//	-- [when]
//	if MDSs[whoami]["load"] > .01 then
//	-- [where]
//	targets[whoami+1] = allmetaload/2
//	-- [howmuch]
//	{"half"}
//
// Unknown section names are an error; missing sections fall back to the
// Table 1 defaults, like empty Policy fields.

var sectionNames = map[string]int{
	"metaload": 0, "mds_bal_metaload": 0,
	"mdsload": 1, "mds_bal_mdsload": 1,
	"when": 2, "mds_bal_when": 2,
	"where": 3, "mds_bal_where": 3,
	"howmuch": 4, "mds_bal_howmuch": 4,
	"when_elastic": 5, "mds_bal_when_elastic": 5,
	"when_replicate": 6, "mds_bal_when_replicate": 6,
}

// numSections is the number of distinct policy-file sections.
const numSections = 7

// ParsePolicyFile parses the sectioned policy format. name labels the policy
// (usually the file basename).
func ParsePolicyFile(name, src string) (Policy, error) {
	p := Policy{Name: name}
	sections := [numSections]*strings.Builder{}
	for i := range sections {
		sections[i] = &strings.Builder{}
	}
	cur := -1
	sawSection := false
	for lineNo, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if marker, ok := parseSectionMarker(trimmed); ok {
			idx, known := sectionNames[marker]
			if !known {
				return p, fmt.Errorf("policy %s:%d: unknown section %q", name, lineNo+1, marker)
			}
			if sections[idx].Len() > 0 {
				return p, fmt.Errorf("policy %s:%d: duplicate section %q", name, lineNo+1, marker)
			}
			cur = idx
			sawSection = true
			continue
		}
		if cur >= 0 {
			sections[cur].WriteString(line)
			sections[cur].WriteByte('\n')
		} else if trimmed != "" && !strings.HasPrefix(trimmed, "--") {
			return p, fmt.Errorf("policy %s:%d: code before the first section marker", name, lineNo+1)
		}
	}
	if !sawSection {
		return p, fmt.Errorf("policy %s: no section markers found (expected e.g. `-- [when]`)", name)
	}
	p.MetaLoad = strings.TrimSpace(sections[0].String())
	p.MDSLoad = strings.TrimSpace(sections[1].String())
	p.When = strings.TrimSpace(sections[2].String())
	p.Where = strings.TrimSpace(sections[3].String())
	p.HowMuch = strings.TrimSpace(sections[4].String())
	p.WhenElastic = strings.TrimSpace(sections[5].String())
	p.WhenReplicate = strings.TrimSpace(sections[6].String())
	return p, nil
}

// parseSectionMarker recognises `-- [name]` lines.
func parseSectionMarker(line string) (string, bool) {
	if !strings.HasPrefix(line, "--") {
		return "", false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(line, "--"))
	if !strings.HasPrefix(rest, "[") || !strings.HasSuffix(rest, "]") {
		return "", false
	}
	return strings.ToLower(strings.TrimSpace(rest[1 : len(rest)-1])), true
}

// FormatPolicyFile renders a Policy in the sectioned file format.
func FormatPolicyFile(p Policy) string {
	var b strings.Builder
	write := func(section, body string) {
		if strings.TrimSpace(body) == "" {
			return
		}
		fmt.Fprintf(&b, "-- [%s]\n%s\n", section, strings.TrimSpace(body))
	}
	if p.Name != "" {
		fmt.Fprintf(&b, "-- policy: %s\n", p.Name)
	}
	write("metaload", p.MetaLoad)
	write("mdsload", p.MDSLoad)
	write("when", p.When)
	write("where", p.Where)
	write("howmuch", p.HowMuch)
	write("when_elastic", p.WhenElastic)
	write("when_replicate", p.WhenReplicate)
	return b.String()
}
