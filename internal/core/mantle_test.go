package core

import (
	"math"
	"strings"
	"testing"

	"mantle/internal/balancer"
	"mantle/internal/namespace"
)

func mustBalancer(t *testing.T, p Policy) *LuaBalancer {
	t.Helper()
	b, err := NewLuaBalancer(p, Options{})
	if err != nil {
		t.Fatalf("NewLuaBalancer(%s): %v", p.Name, err)
	}
	return b
}

func envOf(who int, loads ...float64) *balancer.Env {
	e := &balancer.Env{WhoAmI: namespace.Rank(who), State: &balancer.MemState{}}
	for _, l := range loads {
		e.MDSs = append(e.MDSs, balancer.MDSMetrics{Load: l, All: l, Auth: l, CPU: l})
		e.Total += l
	}
	if who < len(loads) {
		e.AuthMetaLoad = loads[who]
		e.AllMetaLoad = loads[who]
	}
	return e
}

func TestAllBuiltinPoliciesCompile(t *testing.T) {
	for name, p := range Policies() {
		if _, err := NewLuaBalancer(p, Options{}); err != nil {
			t.Errorf("policy %s does not compile: %v", name, err)
		}
	}
}

func TestAllBuiltinPoliciesValidate(t *testing.T) {
	for name, p := range Policies() {
		rep := Validate(p)
		if !rep.OK() {
			t.Errorf("policy %s failed validation:\n%s", name, rep)
		}
	}
}

func TestDefaultMetaLoadFormula(t *testing.T) {
	b := mustBalancer(t, DefaultPolicy())
	got, err := b.MetaLoad(namespace.CounterSnapshot{IRD: 1, IWR: 2, Readdir: 3, Fetch: 4, Store: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 36 { // 1 + 2*2 + 3 + 2*4 + 4*5
		t.Fatalf("metaload = %v, want 36", got)
	}
}

func TestDefaultMDSLoadFormula(t *testing.T) {
	b := mustBalancer(t, DefaultPolicy())
	e := &balancer.Env{
		WhoAmI: 0,
		MDSs: []balancer.MDSMetrics{
			{Auth: 10, All: 20, Req: 5, Queue: 3},
			{Auth: 0, All: 0},
		},
		State: &balancer.MemState{},
	}
	got, err := b.MDSLoad(0, e)
	if err != nil {
		t.Fatal(err)
	}
	if got != 47 { // 0.8*10 + 0.2*20 + 5 + 10*3
		t.Fatalf("mdsload = %v, want 47", got)
	}
}

func TestDefaultWhenAndWhere(t *testing.T) {
	b := mustBalancer(t, DefaultPolicy())
	e := envOf(0, 90, 10, 20)
	ok, err := b.When(e)
	if err != nil || !ok {
		t.Fatalf("when = %v, %v", ok, err)
	}
	targets, err := b.Where(e)
	if err != nil {
		t.Fatal(err)
	}
	// Mirrors the Go CephFS policy: deficits 30 and 20 scaled by 0.8.
	if math.Abs(targets[1]-24) > 1e-9 || math.Abs(targets[2]-16) > 1e-9 {
		t.Fatalf("targets = %v", targets)
	}
	// Underloaded MDS does not migrate.
	if ok, _ := b.When(envOf(1, 90, 10, 20)); ok {
		t.Fatal("underloaded rank migrated")
	}
}

func TestGreedySpillListing(t *testing.T) {
	b := mustBalancer(t, GreedySpillPolicy())
	if got, _ := b.MetaLoad(namespace.CounterSnapshot{IRD: 9, IWR: 4}); got != 4 {
		t.Fatalf("metaload = %v, want IWR only", got)
	}
	e := envOf(0, 10, 0, 0, 0)
	e.AllMetaLoad = 10
	ok, err := b.When(e)
	if err != nil || !ok {
		t.Fatalf("when = %v, %v", ok, err)
	}
	targets, err := b.Where(e)
	if err != nil {
		t.Fatal(err)
	}
	if targets[1] != 5 {
		t.Fatalf("targets = %v", targets)
	}
	how, _ := b.HowMuch(e)
	if len(how) != 1 || how[0] != "half" {
		t.Fatalf("howmuch = %v", how)
	}
	// Busy neighbour blocks the spill.
	if ok, _ := b.When(envOf(0, 10, 8, 0, 0)); ok {
		t.Fatal("spilled onto busy neighbour")
	}
	// Last rank must not error (the guard the listing omits).
	if ok, err := b.When(envOf(3, 0, 0, 0, 10)); err != nil || ok {
		t.Fatalf("last rank: ok=%v err=%v", ok, err)
	}
}

func TestGreedySpillEvenListing(t *testing.T) {
	b := mustBalancer(t, GreedySpillEvenPolicy())
	// Rank 0 of 4 (whoami=1): t = floor(4/2)+1 = 3 → rank index 2.
	e := envOf(0, 10, 0, 0, 0)
	ok, err := b.When(e)
	if err != nil || !ok {
		t.Fatalf("when: %v %v", ok, err)
	}
	targets, err := b.Where(e)
	if err != nil {
		t.Fatal(err)
	}
	if targets[2] != 5 {
		t.Fatalf("targets = %v, want rank 2", targets)
	}
	// Rank 2 loaded (whoami=3): t = floor(2/2)+3 = 4 → rank 3.
	e2 := envOf(2, 5, 0, 5, 0)
	if ok, _ := b.When(e2); !ok {
		t.Fatal("rank 2 should spill")
	}
	targets2, _ := b.Where(e2)
	if targets2[3] != 2.5 {
		t.Fatalf("targets = %v, want rank 3", targets2)
	}
	// Rank 0 again: half-way (2) is busy → walk back to rank 1. The
	// where hook consumes the `t` computed by when, so when runs first.
	e3 := envOf(0, 5, 0, 5, 2.5)
	if ok, _ := b.When(e3); !ok {
		t.Fatal("rank 0 should spill to rank 1")
	}
	targets3, _ := b.Where(e3)
	if math.Abs(targets3[1]-2.5) > 1e-9 {
		t.Fatalf("targets = %v, want rank 1", targets3)
	}
	// Saturated cluster: nowhere to go.
	if ok, _ := b.When(envOf(0, 5, 5, 5, 5)); ok {
		t.Fatal("saturated cluster still spilled")
	}
}

func TestFillAndSpillListingThreeStrikes(t *testing.T) {
	b := mustBalancer(t, FillAndSpillPolicy())
	hotEnv := envOf(0, 40, 0)
	hotEnv.MDSs[0].CPU = 95
	coolEnv := envOf(0, 40, 0)
	coolEnv.MDSs[0].CPU = 10
	// WRstate/RDstate live in the caller-provided store (the MDS's); both
	// views of the same MDS must share it.
	coolEnv.State = hotEnv.State

	when := func(e *balancer.Env) bool {
		ok, err := b.When(e)
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}
	if when(hotEnv) || when(hotEnv) {
		t.Fatal("fired before 3 straight hot samples")
	}
	if !when(hotEnv) {
		t.Fatal("3rd hot sample should fire")
	}
	targets, err := b.Where(hotEnv)
	if err != nil {
		t.Fatal(err)
	}
	if targets[1] != 10 { // load/4
		t.Fatalf("targets = %v", targets)
	}
	// Reset after firing; cool sample also resets.
	if when(hotEnv) {
		t.Fatal("did not reset after firing")
	}
	if when(coolEnv) {
		t.Fatal("cool sample fired")
	}
	if when(hotEnv) || when(hotEnv) {
		t.Fatal("streak not restarted")
	}
	if !when(hotEnv) {
		t.Fatal("should fire after fresh streak")
	}
}

func TestAdaptableListing(t *testing.T) {
	b := mustBalancer(t, AdaptablePolicy())
	if got, _ := b.MetaLoad(namespace.CounterSnapshot{IRD: 3, IWR: 4}); got != 7 {
		t.Fatalf("metaload = %v", got)
	}
	// Majority holder migrates, filling others to the mean.
	e := envOf(0, 90, 0, 0)
	if ok, _ := b.When(e); !ok {
		t.Fatal("majority holder should migrate")
	}
	targets, err := b.Where(e)
	if err != nil {
		t.Fatal(err)
	}
	if targets[1] != 30 || targets[2] != 30 {
		t.Fatalf("targets = %v", targets)
	}
	how, _ := b.HowMuch(e)
	want := []string{"half", "small", "big", "big_small"}
	if len(how) != len(want) {
		t.Fatalf("howmuch = %v", how)
	}
	for i := range want {
		if how[i] != want[i] {
			t.Fatalf("howmuch = %v", how)
		}
	}
	// Non-majority or non-max does not migrate.
	if ok, _ := b.When(envOf(0, 40, 30, 30)); ok {
		t.Fatal("non-majority migrated")
	}
	if ok, _ := b.When(envOf(0, 30, 65, 5)); ok {
		t.Fatal("non-max migrated")
	}
}

func TestConservativeAndTooAggressiveVariants(t *testing.T) {
	cons := mustBalancer(t, ConservativePolicy(50))
	if ok, _ := cons.When(envOf(0, 40, 0, 0)); ok {
		t.Fatal("conservative fired below floor")
	}
	if ok, _ := cons.When(envOf(0, 60, 0, 0)); !ok {
		t.Fatal("conservative should fire above floor")
	}
	aggr := mustBalancer(t, TooAggressivePolicy())
	if ok, _ := aggr.When(envOf(0, 34, 33, 33)); !ok {
		t.Fatal("too-aggressive should fire on slight imbalance")
	}
	if ok, _ := aggr.When(envOf(1, 34, 33, 33)); ok {
		t.Fatal("below-mean rank fired")
	}
}

func TestWhenThenFragmentCompletion(t *testing.T) {
	// The paper writes when-hooks as bare `if ... then` fragments.
	p := Policy{
		Name: "frag",
		When: `if MDSs[whoami]["load"] > total/#MDSs then`,
	}
	b := mustBalancer(t, p)
	if ok, err := b.When(envOf(0, 10, 0)); err != nil || !ok {
		t.Fatalf("fragment when: %v %v", ok, err)
	}
	if ok, _ := b.When(envOf(1, 10, 0)); ok {
		t.Fatal("fragment when fired for idle rank")
	}
}

func TestWhenExpressionForm(t *testing.T) {
	b := mustBalancer(t, Policy{When: `MDSs[whoami]["load"] > 5`})
	if ok, _ := b.When(envOf(0, 10, 0)); !ok {
		t.Fatal("expression when should fire")
	}
	if ok, _ := b.When(envOf(0, 1, 0)); ok {
		t.Fatal("expression when should not fire")
	}
}

func TestHowMuchStringForm(t *testing.T) {
	b := mustBalancer(t, Policy{HowMuch: `"big_first"`})
	names, err := b.HowMuch(envOf(0, 1, 0))
	if err != nil || len(names) != 1 || names[0] != "big_first" {
		t.Fatalf("names=%v err=%v", names, err)
	}
}

func TestWhereRejectsSelfTarget(t *testing.T) {
	b := mustBalancer(t, Policy{
		When:  `true`,
		Where: `targets[whoami] = 10`,
	})
	if _, err := b.Where(envOf(0, 10, 0)); err == nil || !strings.Contains(err.Error(), "itself") {
		t.Fatalf("err = %v", err)
	}
}

func TestWhereRejectsNonNumericTarget(t *testing.T) {
	b := mustBalancer(t, Policy{Where: `targets[2] = "lots"`})
	if _, err := b.Where(envOf(0, 10, 0)); err == nil || !strings.Contains(err.Error(), "want number") {
		t.Fatalf("err = %v", err)
	}
}

func TestRuntimeErrorSurfacesHookName(t *testing.T) {
	b := mustBalancer(t, Policy{When: `return nil + 1`})
	_, err := b.When(envOf(0, 1, 0))
	if err == nil || !strings.Contains(err.Error(), "mds_bal_when") {
		t.Fatalf("err = %v", err)
	}
	if b.HookErrors != 1 {
		t.Fatalf("HookErrors = %d", b.HookErrors)
	}
}

func TestInfinitePolicyIsKilled(t *testing.T) {
	b := mustBalancer(t, Policy{When: `while 1 do end return true`})
	_, err := b.When(envOf(0, 1, 0))
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateCatchesBadPolicies(t *testing.T) {
	cases := []struct {
		name string
		p    Policy
		frag string
	}{
		{"syntax", Policy{When: `if without end`}, "compile"},
		{"infinite", Policy{When: `while 1 do end return false`}, "budget"},
		{"bad-selector", Policy{HowMuch: `{"warp_speed"}`}, "unknown dirfrag selector"},
		{"self-target", Policy{When: `true`, Where: `targets[whoami] = 5`}, "itself"},
		{"string-metaload", Policy{MetaLoad: `"heavy"`}, "want number"},
		{"nil-index", Policy{When: `if MDSs[whoami+99]["load"] > 0 then`}, "index a nil"},
	}
	for _, c := range cases {
		rep := Validate(c.p)
		if rep.OK() {
			t.Errorf("%s: validation passed but should fail", c.name)
			continue
		}
		found := false
		for _, prob := range rep.Problems {
			if strings.Contains(prob, c.frag) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: problems %v missing fragment %q", c.name, rep.Problems, c.frag)
		}
	}
}

func TestValidateReportString(t *testing.T) {
	rep := Validate(DefaultPolicy())
	if !strings.Contains(rep.String(), "policy OK") {
		t.Fatalf("report = %q", rep.String())
	}
	bad := Validate(Policy{MetaLoad: `(`})
	if !strings.Contains(bad.String(), "problem") {
		t.Fatalf("report = %q", bad.String())
	}
}

func TestEmptyHooksFallBackToDefaults(t *testing.T) {
	// A policy that only overrides metaload keeps Table 1 behaviour
	// elsewhere.
	b := mustBalancer(t, Policy{Name: "partial", MetaLoad: `IWR`})
	if got, _ := b.MetaLoad(namespace.CounterSnapshot{IRD: 5, IWR: 2}); got != 2 {
		t.Fatalf("metaload override = %v", got)
	}
	if ok, _ := b.When(envOf(0, 90, 10, 20)); !ok {
		t.Fatal("default when should fire")
	}
	how, _ := b.HowMuch(envOf(0, 1, 0))
	if how[0] != "big_first" {
		t.Fatalf("default howmuch = %v", how)
	}
}

func TestStatePersistsAcrossHookInvocations(t *testing.T) {
	b := mustBalancer(t, Policy{
		When: `
local n = RDstate() or 0
WRstate(n + 1)
return n >= 2`,
	})
	e := envOf(0, 1, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := b.When(e); ok {
			t.Fatal("fired early")
		}
	}
	if ok, _ := b.When(e); !ok {
		t.Fatal("state did not persist")
	}
}

func TestGlobalsPersistBetweenWhenAndWhere(t *testing.T) {
	// Listing 2 depends on `t` surviving from when to where.
	b := mustBalancer(t, Policy{
		When:  `chosen = 2 return true`,
		Where: `targets[chosen] = 7`,
	})
	e := envOf(0, 10, 0)
	if ok, _ := b.When(e); !ok {
		t.Fatal("when")
	}
	targets, err := b.Where(e)
	if err != nil || targets[1] != 7 {
		t.Fatalf("targets=%v err=%v", targets, err)
	}
}

func TestPaperSelectorExampleThroughMantle(t *testing.T) {
	// §2.2.3's worked example run through a Mantle policy's howmuch list:
	// loads {12.7 13.3 13.3 14.6 15.7 13.5 13.7 14.6}, target 55.6.
	b := mustBalancer(t, AdaptablePolicy())
	names, err := b.HowMuch(envOf(0, 90, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	loads := []float64{12.7, 13.3, 13.3, 14.6, 15.7, 13.5, 13.7, 14.6}
	cands := make([]balancer.FragCandidate, len(loads))
	for i, l := range loads {
		cands[i] = balancer.FragCandidate{ID: i, Load: l}
	}
	_, shipped, used, err := balancer.ChooseFrags(names, cands, 55.6)
	if err != nil {
		t.Fatal(err)
	}
	dist := math.Abs(shipped - 55.6)
	// The original big-first heuristic lands 3.0 away; Mantle's
	// arbitration must do strictly better on this example (the paper
	// reports 0.5 with its big_small definition; ours lands within 1).
	if dist >= 3.0 {
		t.Fatalf("selector %s shipped %.1f (distance %.2f), no better than big_first", used, shipped, dist)
	}
	t.Logf("winner=%s shipped=%.1f distance=%.2f", used, shipped, dist)
}

func TestPolicyNamesSorted(t *testing.T) {
	names := PolicyNames()
	if len(names) != len(Policies()) {
		t.Fatal("length mismatch")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("not sorted: %v", names)
		}
	}
}

func TestBalancerName(t *testing.T) {
	b := mustBalancer(t, Policy{Name: "custom"})
	if b.Name() != "custom" {
		t.Fatalf("name = %q", b.Name())
	}
	b2 := mustBalancer(t, Policy{})
	if b2.Name() != "mantle" {
		t.Fatalf("default name = %q", b2.Name())
	}
}
