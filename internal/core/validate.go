package core

import (
	"fmt"
	"strings"

	"mantle/internal/balancer"
	"mantle/internal/namespace"
)

// ValidationReport is the result of dry-running a policy against synthetic
// cluster states — the "simulator that checks the logic before injecting
// policies in the running cluster" that §4.4 of the paper describes.
type ValidationReport struct {
	// Problems lists everything that failed; empty means the policy is
	// safe to inject.
	Problems []string
	// WhenTrueStates counts synthetic states in which the policy chose
	// to migrate (useful to spot never-fires / always-fires policies).
	WhenTrueStates int
	// StatesTried is the number of synthetic cluster states evaluated.
	StatesTried int
}

// OK reports whether validation found no problems.
func (r *ValidationReport) OK() bool { return len(r.Problems) == 0 }

// String renders the report for the CLI.
func (r *ValidationReport) String() string {
	var b strings.Builder
	if r.OK() {
		fmt.Fprintf(&b, "policy OK: %d/%d synthetic states would migrate\n", r.WhenTrueStates, r.StatesTried)
		return b.String()
	}
	fmt.Fprintf(&b, "policy has %d problem(s):\n", len(r.Problems))
	for _, p := range r.Problems {
		fmt.Fprintf(&b, "  - %s\n", p)
	}
	return b.String()
}

// syntheticEnvs builds a spread of cluster states: idle, balanced, skewed,
// one-hot, and every rank as the decider, for sizes 1..5.
func syntheticEnvs(state balancer.StateStore) []*balancer.Env {
	var envs []*balancer.Env
	shapes := [][]float64{
		{0},
		{100},
		{100, 0},
		{50, 50},
		{0.005, 0.002},
		{100, 0, 0, 0},
		{25, 25, 25, 25},
		{60, 30, 5, 5},
		{10, 80, 5, 5, 0},
	}
	for _, loads := range shapes {
		for who := range loads {
			e := &balancer.Env{WhoAmI: namespace.Rank(who), State: state}
			for i, l := range loads {
				cpu := l
				if cpu > 100 {
					cpu = 100
				}
				e.MDSs = append(e.MDSs, balancer.MDSMetrics{
					Auth: l, All: l, Load: l, CPU: cpu,
					Mem: 10, Queue: l / 10, Req: l * 2,
				})
				e.Total += l
				_ = i
			}
			e.AuthMetaLoad = loads[who]
			e.AllMetaLoad = loads[who]
			envs = append(envs, e)
		}
	}
	return envs
}

// CheckPolicyFile is the shared `mantle-policy check` path: parse an
// injectable policy file and lint it against synthetic cluster states. A
// parse failure returns an error; a lint failure returns a non-OK report.
// name labels the policy (usually the file basename without extension).
func CheckPolicyFile(name, src string) (Policy, *ValidationReport, error) {
	p, err := ParsePolicyFile(name, src)
	if err != nil {
		return Policy{}, nil, err
	}
	return p, Validate(p), nil
}

// Validate compiles the policy with a tight step budget and dry-runs every
// hook against synthetic cluster states, collecting runtime errors, bad
// return types, invalid targets and unknown selector names.
func Validate(p Policy) *ValidationReport {
	rep := &ValidationReport{}
	lb, err := NewLuaBalancer(p, Options{MaxSteps: 200_000})
	if err != nil {
		rep.Problems = append(rep.Problems, err.Error())
		return rep
	}
	seen := map[string]bool{}
	add := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		if !seen[msg] {
			seen[msg] = true
			rep.Problems = append(rep.Problems, msg)
		}
	}

	// Metaload over representative counter snapshots.
	for _, d := range []namespace.CounterSnapshot{
		{},
		{IWR: 100},
		{IRD: 50, IWR: 25, Readdir: 10, Fetch: 2, Store: 1},
	} {
		if v, err := lb.MetaLoad(d); err != nil {
			add("%s", err)
		} else if v < 0 {
			add("mantle: mds_bal_metaload returned a negative load (%g) for %+v", v, d)
		}
	}

	for _, e := range syntheticEnvs(lb.State()) {
		rep.StatesTried++
		for i := range e.MDSs {
			if _, err := lb.MDSLoad(namespace.Rank(i), e); err != nil {
				add("%s", err)
				break
			}
		}
		ok, err := lb.When(e)
		if err != nil {
			add("%s (state: %d MDSs, whoami=%d)", err, len(e.MDSs), e.WhoAmI+1)
			continue
		}
		if !ok {
			continue
		}
		rep.WhenTrueStates++
		targets, err := lb.Where(e)
		if err != nil {
			add("%s (state: %d MDSs, whoami=%d)", err, len(e.MDSs), e.WhoAmI+1)
			continue
		}
		names, err := lb.HowMuch(e)
		if err != nil {
			add("%s", err)
			continue
		}
		cands := []balancer.FragCandidate{{ID: 0, Load: 5}, {ID: 1, Load: 3}, {ID: 2, Load: 8}}
		if _, _, _, err := balancer.ChooseFrags(names, cands, targets.TotalTarget()); err != nil {
			add("%s", err)
		}
	}

	// The elastic hook is validated only when the policy carries one: most
	// balancing policies have no membership opinion, and a missing hook must
	// not count against them.
	if strings.TrimSpace(p.WhenElastic) != "" {
		validateElastic(p.WhenElastic, add)
	}
	if strings.TrimSpace(p.WhenReplicate) != "" {
		validateReplicate(p.WhenReplicate, add)
	}
	return rep
}
