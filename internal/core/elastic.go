package core

import (
	"fmt"
	"strings"

	"mantle/internal/balancer"
	"mantle/internal/lua"
)

// The when_elastic hook extends Mantle's programmable surface from load
// placement to cluster membership: where when/where/howmuch decide how load
// moves between a fixed set of ranks, when_elastic decides whether the rank
// pool itself should grow or shrink. It is evaluated by the elastic
// coordinator (not by every MDS) against per-rank queue and latency metrics
// — the signals Prequal argues predict overload better than raw load — plus
// the pool bounds.
//
// Environment:
//
//	active            number of active ranks
//	min_ranks         lower pool bound (the coordinator never shrinks past it)
//	max_ranks         upper pool bound
//	MDSs[i]           per active rank, 1-based like the Table 2 environment:
//	  ["q"]           queued requests (last heartbeat)
//	  ["req"]         request rate, ops/s
//	  ["cpu"]         percent utilisation
//	  ["load"]        scalarised metadata load
//	  ["lat"]         recent p99 request latency in milliseconds (0 when the
//	                  host has no latency feed, e.g. headless simulations)
//	WRstate/RDstate   persistent scratch, as in the balancing hooks
//
// The hook returns a number: > 0 votes to grow by one rank, < 0 to shrink by
// one, 0 (or nil) to hold. Debouncing lives in the coordinator (sustain
// counts and a cooldown), so a policy can be a memoryless threshold — or
// keep its own counters via WRstate if it wants different hysteresis.

// ElasticRankMetrics is one active rank's signal set for the elastic hook.
type ElasticRankMetrics struct {
	Queue float64 // queued requests at last heartbeat
	Req   float64 // request rate, ops/s
	CPU   float64 // percent utilisation
	Load  float64 // scalarised metadata load
	LatMS float64 // recent p99 request latency, milliseconds (0 = no feed)
}

// ElasticEnv is the cluster state bound for one when_elastic evaluation.
type ElasticEnv struct {
	Active   int
	MinRanks int
	MaxRanks int
	MDSs     []ElasticRankMetrics
}

// Elastic hook verdicts.
const (
	ElasticHold   = 0
	ElasticGrow   = 1
	ElasticShrink = -1
)

// DefaultElasticScript is the built-in when_elastic policy: grow when the
// pool is queue-bound or latency-bound on average, shrink when it is idle.
// The thresholds are deliberately round — they are the policy a deployment
// is expected to replace (policies/elastic.lua carries a tunable version).
const DefaultElasticScript = `
local q, lat = 0, 0
for i = 1, active do
	q = q + MDSs[i]["q"]
	lat = lat + MDSs[i]["lat"]
end
q = q / active
lat = lat / active
if q > 50 or lat > 50 then
	return 1
end
if q < 5 and lat < 5 then
	return -1
end
return 0`

// ElasticHook is a compiled when_elastic script. It owns its VM (the
// coordinator is not an MDS and shares no balancer state), so evaluation
// never races a rank's balancing hooks.
type ElasticHook struct {
	vm    *lua.VM
	chunk *lua.Chunk
	state balancer.StateStore

	envMDSs  *lua.Table
	envRanks []*lua.Table

	// HookErrors counts runtime failures, mirroring LuaBalancer.
	HookErrors int
}

// NewElasticHook compiles src (empty = DefaultElasticScript).
func NewElasticHook(src string, opts Options) (*ElasticHook, error) {
	if strings.TrimSpace(src) == "" {
		src = DefaultElasticScript
	}
	h := &ElasticHook{vm: lua.NewVM(), state: &balancer.MemState{}}
	if opts.MaxSteps > 0 {
		h.vm.MaxSteps = opts.MaxSteps
	} else {
		h.vm.MaxSteps = DefaultMaxSteps
	}
	chunk, err := lua.CompileExprOrChunk("when_elastic", src)
	if err != nil {
		return nil, fmt.Errorf("mantle: compile when_elastic: %w", err)
	}
	h.chunk = chunk
	write := lua.GoFunc(func(args []lua.Value) ([]lua.Value, error) {
		if len(args) == 0 {
			h.state.Write(nil)
		} else {
			h.state.Write(args[0])
		}
		return nil, nil
	})
	read := lua.GoFunc(func(args []lua.Value) ([]lua.Value, error) {
		v := h.state.Read()
		if v == nil {
			return []lua.Value{nil}, nil
		}
		return []lua.Value{v}, nil
	})
	for _, n := range []string{"WRstate", "WRState"} {
		h.vm.Globals.SetString(n, write)
	}
	for _, n := range []string{"RDstate", "RDState"} {
		h.vm.Globals.SetString(n, read)
	}
	return h, nil
}

// Eval runs the hook and reports ElasticGrow, ElasticShrink or ElasticHold.
// Non-zero magnitudes collapse to one step: membership moves one rank per
// epoch so every transition is individually journaled and abortable.
func (h *ElasticHook) Eval(e ElasticEnv) (int, error) {
	h.bind(e)
	vals, err := h.vm.Run(h.chunk)
	if err != nil {
		h.HookErrors++
		return ElasticHold, fmt.Errorf("mantle: when_elastic: %w", err)
	}
	if len(vals) == 0 || vals[0] == nil {
		return ElasticHold, nil
	}
	n, ok := lua.Number(vals[0])
	if !ok {
		h.HookErrors++
		return ElasticHold, fmt.Errorf("mantle: when_elastic returned %v, want number", lua.TypeOf(vals[0]))
	}
	switch {
	case n > 0:
		return ElasticGrow, nil
	case n < 0:
		return ElasticShrink, nil
	default:
		return ElasticHold, nil
	}
}

// bind publishes the elastic environment, reusing cached tables like
// LuaBalancer.bindEnv.
func (h *ElasticHook) bind(e ElasticEnv) {
	g := h.vm.Globals
	g.SetString("active", lua.Box(float64(e.Active)))
	g.SetString("min_ranks", lua.Box(float64(e.MinRanks)))
	g.SetString("max_ranks", lua.Box(float64(e.MaxRanks)))
	if h.envMDSs == nil {
		h.envMDSs = lua.NewTable()
	}
	for i := len(h.envRanks); i > len(e.MDSs); i-- {
		h.envMDSs.SetInt(i, nil)
	}
	if len(h.envRanks) > len(e.MDSs) {
		h.envRanks = h.envRanks[:len(e.MDSs)]
	}
	for i, m := range e.MDSs {
		var mt *lua.Table
		if i < len(h.envRanks) {
			mt = h.envRanks[i]
		} else {
			mt = lua.NewTable()
			h.envRanks = append(h.envRanks, mt)
			h.envMDSs.SetInt(i+1, mt)
		}
		mt.SetString("q", lua.Box(m.Queue))
		mt.SetString("req", lua.Box(m.Req))
		mt.SetString("cpu", lua.Box(m.CPU))
		mt.SetString("load", lua.Box(m.Load))
		mt.SetString("lat", lua.Box(m.LatMS))
	}
	g.SetString("MDSs", h.envMDSs)
}

// syntheticElasticEnvs is the validator's state spread for when_elastic:
// idle, loaded, latency-bound and mixed pools at several sizes, each at the
// pool bounds and in the middle.
func syntheticElasticEnvs() []ElasticEnv {
	shapes := [][]ElasticRankMetrics{
		{{}},
		{{Queue: 200, Req: 5000, CPU: 95, Load: 80, LatMS: 120}},
		{{Queue: 1, LatMS: 1}, {Queue: 2, LatMS: 2}},
		{{Queue: 90, LatMS: 60}, {Queue: 110, LatMS: 80}, {Queue: 100, LatMS: 70}},
		{{Queue: 60, LatMS: 10}, {Queue: 0, LatMS: 1}, {Queue: 0, LatMS: 1}, {Queue: 0, LatMS: 1}},
	}
	var envs []ElasticEnv
	for _, mdss := range shapes {
		n := len(mdss)
		envs = append(envs,
			ElasticEnv{Active: n, MinRanks: 1, MaxRanks: n + 4, MDSs: mdss},
			ElasticEnv{Active: n, MinRanks: n, MaxRanks: n, MDSs: mdss},
		)
	}
	return envs
}

// validateElastic dry-runs a when_elastic script and appends problems.
func validateElastic(src string, add func(format string, args ...any)) {
	h, err := NewElasticHook(src, Options{MaxSteps: 200_000})
	if err != nil {
		add("%s", err)
		return
	}
	for _, e := range syntheticElasticEnvs() {
		if _, err := h.Eval(e); err != nil {
			add("%s (state: %d active)", err, e.Active)
		}
	}
}
