// Package core implements Mantle, the paper's contribution: a programmable
// metadata load balancer whose policy decisions — load calculation, "when"
// to migrate, "where" to send load, and "how much" accuracy — are injectable
// Lua scripts evaluated against the environment of Table 2.
//
// A Policy is five scripts. LuaBalancer compiles them once and implements
// the same balancer.Balancer interface as the Go-native policies, so the MDS
// mechanism (dynamic subtree partitioning, dirfrag export, heartbeats) is
// untouched — exactly the policy/mechanism split the paper argues for.
// Scripts run on a per-MDS VM whose globals persist across invocations, so
// the paper's listings — which pass values from the "when" hook to the
// "where" hook through globals like `t` and `go_` — work as written.
package core

import (
	"fmt"
	"strings"

	"mantle/internal/balancer"
	"mantle/internal/lua"
	"mantle/internal/namespace"
)

// Policy is a set of injectable balancer scripts. Empty fields fall back to
// the original CephFS behaviour for that hook (Table 1), so a policy may
// override only the decisions it cares about.
type Policy struct {
	// Name labels the policy in logs and experiment output.
	Name string
	// MetaLoad computes the load on a dirfrag/subtree
	// (mds_bal_metaload). Environment: IRD, IWR, READDIR, FETCH, STORE,
	// whoami, authmetaload, allmetaload. May be a bare expression such
	// as `IRD + 2*IWR`.
	MetaLoad string
	// MDSLoad computes the load on MDS i (mds_bal_mdsload).
	// Environment: i, MDSs[i]["auth"|"all"|"cpu"|"mem"|"q"|"req"].
	MDSLoad string
	// When decides whether to migrate (mds_bal_when). May be a full
	// chunk returning a boolean, a bare expression, or — as in the
	// paper's listings — a fragment ending in `then`, which Mantle
	// completes.
	When string
	// Where fills the targets[] table with how much load to send to
	// each MDS (mds_bal_where; 1-based indexes as in the paper).
	Where string
	// HowMuch returns the list of dirfrag selectors to try
	// (mds_bal_howmuch), e.g. `{"big_first"}` or `{"half","small"}`.
	HowMuch string
	// WhenElastic decides whether the rank pool grows or shrinks
	// (when_elastic). Evaluated by the elastic coordinator, not by the
	// per-rank balancer; see ElasticHook. Empty = no opinion (a cluster
	// without elasticity enabled ignores it entirely).
	WhenElastic string
	// WhenReplicate decides whether a read-hot directory gains or loses
	// read replicas (when_replicate). Evaluated by the authoritative rank
	// per hot candidate; see ReplicateHook. Empty = no opinion (a cluster
	// without replication enabled ignores it entirely).
	WhenReplicate string
}

// hook identifies one compiled script.
type hook int

const (
	hookMetaLoad hook = iota
	hookMDSLoad
	hookWhen
	hookWhere
	hookHowMuch
	numHooks
)

var hookNames = [numHooks]string{
	"mds_bal_metaload", "mds_bal_mdsload", "mds_bal_when",
	"mds_bal_where", "mds_bal_howmuch",
}

// whenResultVar is the global the "then-fragment" transformation assigns.
const whenResultVar = "__mantle_when"

// DefaultMaxSteps is the per-invocation instruction budget. Generous for a
// balancing decision, far too small for a runaway loop — the safety check
// §4.4 of the paper leaves as future work.
const DefaultMaxSteps = 1_000_000

// Options tunes the sandbox.
type Options struct {
	// MaxSteps bounds each hook invocation (0 = DefaultMaxSteps).
	MaxSteps int64
}

// LuaBalancer runs a Policy. It implements balancer.Balancer.
type LuaBalancer struct {
	policy Policy
	vm     *lua.VM
	chunks [numHooks]*lua.Chunk
	state  balancer.StateStore

	// Cached Table 2 environment: the MDSs table, its per-rank tables,
	// and the targets table survive across hook invocations so a
	// heartbeat only overwrites numeric fields instead of rebuilding
	// (and re-allocating) the whole structure every decision.
	envMDSs  *lua.Table
	envRanks []*lua.Table
	targets  *lua.Table

	// HookErrors counts per-hook runtime failures, surfaced by the
	// policy linter and the MDS log.
	HookErrors int
}

var _ balancer.Balancer = (*LuaBalancer)(nil)

// NewLuaBalancer compiles the policy. Compilation errors carry the hook
// name, the script line, and the parser message.
func NewLuaBalancer(p Policy, opts Options) (*LuaBalancer, error) {
	b := &LuaBalancer{policy: p, vm: lua.NewVM(), state: &balancer.MemState{}}
	if opts.MaxSteps > 0 {
		b.vm.MaxSteps = opts.MaxSteps
	} else {
		b.vm.MaxSteps = DefaultMaxSteps
	}
	defaults := DefaultPolicy()
	srcs := [numHooks]string{p.MetaLoad, p.MDSLoad, p.When, p.Where, p.HowMuch}
	defs := [numHooks]string{defaults.MetaLoad, defaults.MDSLoad, defaults.When, defaults.Where, defaults.HowMuch}
	for h := hookMetaLoad; h < numHooks; h++ {
		src := strings.TrimSpace(srcs[h])
		if src == "" {
			src = defs[h]
		}
		chunk, err := compileHook(h, src)
		if err != nil {
			return nil, err
		}
		b.chunks[h] = chunk
	}
	b.installStateFunctions()
	return b, nil
}

// compileHook compiles one script, applying the "then-fragment" completion
// for when-hooks written like the paper's listings.
func compileHook(h hook, src string) (*lua.Chunk, error) {
	name := hookNames[h]
	if h == hookWhen {
		if trimmed := strings.TrimSpace(src); strings.HasSuffix(trimmed, "then") {
			src = whenResultVar + " = false " + trimmed + " " + whenResultVar + " = true end"
		}
	}
	chunk, err := lua.CompileExprOrChunk(name, src)
	if err != nil {
		return nil, fmt.Errorf("mantle: compile %s: %w", name, err)
	}
	return chunk, nil
}

// Name implements balancer.Balancer.
func (b *LuaBalancer) Name() string {
	if b.policy.Name != "" {
		return b.policy.Name
	}
	return "mantle"
}

// Policy returns the injected scripts.
func (b *LuaBalancer) Policy() Policy { return b.policy }

// State exposes the WRstate/RDstate store.
func (b *LuaBalancer) State() balancer.StateStore { return b.state }

// VM exposes the underlying interpreter for the policy linter.
func (b *LuaBalancer) VM() *lua.VM { return b.vm }

func (b *LuaBalancer) installStateFunctions() {
	write := lua.GoFunc(func(args []lua.Value) ([]lua.Value, error) {
		if len(args) == 0 {
			b.state.Write(nil)
		} else {
			b.state.Write(args[0])
		}
		return nil, nil
	})
	read := lua.GoFunc(func(args []lua.Value) ([]lua.Value, error) {
		v := b.state.Read()
		if v == nil {
			return []lua.Value{nil}, nil
		}
		return []lua.Value{v}, nil
	})
	// The paper's Table 2 and listings disagree on capitalisation
	// (WRstate vs WRState); accept both.
	for _, n := range []string{"WRstate", "WRState"} {
		b.vm.Globals.SetString(n, write)
	}
	for _, n := range []string{"RDstate", "RDState"} {
		b.vm.Globals.SetString(n, read)
	}
}

func (b *LuaBalancer) runHook(h hook) ([]lua.Value, error) {
	vals, err := b.vm.Run(b.chunks[h])
	if err != nil {
		b.HookErrors++
		return nil, fmt.Errorf("mantle: %s: %w", hookNames[h], err)
	}
	return vals, nil
}

func wantNumberResult(h hook, vals []lua.Value) (float64, error) {
	if len(vals) == 0 {
		return 0, fmt.Errorf("mantle: %s returned no value", hookNames[h])
	}
	n, ok := lua.Number(vals[0])
	if !ok {
		return 0, fmt.Errorf("mantle: %s returned %v, want number", hookNames[h], lua.TypeOf(vals[0]))
	}
	return n, nil
}

// MetaLoad implements balancer.Balancer by evaluating mds_bal_metaload with
// the dirfrag's counters bound to IRD/IWR/READDIR/FETCH/STORE.
func (b *LuaBalancer) MetaLoad(d namespace.CounterSnapshot) (float64, error) {
	g := b.vm.Globals
	g.SetString("IRD", lua.Box(d.IRD))
	g.SetString("IWR", lua.Box(d.IWR))
	g.SetString("READDIR", lua.Box(d.Readdir))
	g.SetString("FETCH", lua.Box(d.Fetch))
	g.SetString("STORE", lua.Box(d.Store))
	vals, err := b.runHook(hookMetaLoad)
	if err != nil {
		return 0, err
	}
	return wantNumberResult(hookMetaLoad, vals)
}

// MDSLoad implements balancer.Balancer by evaluating mds_bal_mdsload with
// the global i set to the 1-based rank being scored.
func (b *LuaBalancer) MDSLoad(rank namespace.Rank, e *balancer.Env) (float64, error) {
	b.bindEnv(e)
	b.vm.Globals.SetString("i", lua.Box(float64(rank)+1))
	vals, err := b.runHook(hookMDSLoad)
	if err != nil {
		return 0, err
	}
	return wantNumberResult(hookMDSLoad, vals)
}

// When implements balancer.Balancer. A when script may either return a
// value (its truthiness decides) or be a then-fragment that sets the
// completion variable.
func (b *LuaBalancer) When(e *balancer.Env) (bool, error) {
	b.bindEnv(e)
	b.vm.Globals.SetString(whenResultVar, nil)
	vals, err := b.runHook(hookWhen)
	if err != nil {
		return false, err
	}
	if v := b.vm.Globals.GetString(whenResultVar); v != nil {
		return lua.Truthy(v), nil
	}
	if len(vals) == 0 {
		return false, nil
	}
	return lua.Truthy(vals[0]), nil
}

// Where implements balancer.Balancer: the script populates the 1-based
// targets[] table, which is read back into rank-keyed Targets.
func (b *LuaBalancer) Where(e *balancer.Env) (balancer.Targets, error) {
	b.bindEnv(e)
	// The targets table is cached and cleared per invocation — the script
	// always observes an empty table, without a fresh allocation.
	if b.targets == nil {
		b.targets = lua.NewTable()
	} else {
		b.targets.Reset()
	}
	targets := b.targets
	b.vm.Globals.SetString("targets", targets)
	if _, err := b.runHook(hookWhere); err != nil {
		return nil, err
	}
	out := balancer.Targets{}
	for i := 1; i <= len(e.MDSs); i++ {
		v := targets.GetInt(i)
		if v == nil {
			continue
		}
		amt, ok := lua.Number(v)
		if !ok {
			return nil, fmt.Errorf("mantle: %s: targets[%d] is %v, want number", hookNames[hookWhere], i, lua.TypeOf(v))
		}
		if amt > 0 {
			out[namespace.Rank(i-1)] = amt
		}
	}
	if err := out.Validate(e); err != nil {
		return nil, fmt.Errorf("mantle: %s: %w", hookNames[hookWhere], err)
	}
	return out, nil
}

// HowMuch implements balancer.Balancer: the script returns a table of
// selector names (or a single name string).
func (b *LuaBalancer) HowMuch(e *balancer.Env) ([]string, error) {
	b.bindEnv(e)
	vals, err := b.runHook(hookHowMuch)
	if err != nil {
		return nil, err
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("mantle: %s returned no value", hookNames[hookHowMuch])
	}
	switch v := vals[0].(type) {
	case string:
		return []string{v}, nil
	case *lua.Table:
		var names []string
		for i := 1; i <= v.Len(); i++ {
			s, ok := v.GetInt(i).(string)
			if !ok {
				return nil, fmt.Errorf("mantle: %s: element %d is not a string", hookNames[hookHowMuch], i)
			}
			names = append(names, s)
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("mantle: %s returned an empty selector list", hookNames[hookHowMuch])
		}
		return names, nil
	default:
		return nil, fmt.Errorf("mantle: %s returned %v, want table of strings", hookNames[hookHowMuch], lua.TypeOf(vals[0]))
	}
}

// bindEnv publishes the Table 2 environment into the VM's globals: whoami
// and the MDSs array are 1-based, matching the paper's scripts. The
// caller-provided state store (the MDS's, possibly RADOS-backed) replaces
// the balancer's private one so WRstate/RDstate persist where the cluster
// says they should.
//
// The MDSs table and its per-rank tables are cached on the balancer and
// only their numeric fields are overwritten per invocation. Globals already
// persist across invocations by design (§ package comment), so a policy
// observing the same table identity between heartbeats is within the
// documented contract; values a hook reads are always freshly bound.
func (b *LuaBalancer) bindEnv(e *balancer.Env) {
	if e.State != nil {
		b.state = e.State
	}
	g := b.vm.Globals
	g.SetString("whoami", lua.Box(float64(e.WhoAmI)+1))
	g.SetString("total", lua.Box(e.Total))
	g.SetString("authmetaload", lua.Box(e.AuthMetaLoad))
	g.SetString("allmetaload", lua.Box(e.AllMetaLoad))
	if b.envMDSs == nil {
		b.envMDSs = lua.NewTable()
	}
	// Drop cached ranks beyond the current cluster size (shrink happens
	// top-down so the table's array part strips trailing entries).
	for i := len(b.envRanks); i > len(e.MDSs); i-- {
		b.envMDSs.SetInt(i, nil)
	}
	if len(b.envRanks) > len(e.MDSs) {
		b.envRanks = b.envRanks[:len(e.MDSs)]
	}
	for i, m := range e.MDSs {
		var mt *lua.Table
		if i < len(b.envRanks) {
			mt = b.envRanks[i]
		} else {
			mt = lua.NewTable()
			b.envRanks = append(b.envRanks, mt)
			b.envMDSs.SetInt(i+1, mt)
		}
		mt.SetString("auth", lua.Box(m.Auth))
		mt.SetString("all", lua.Box(m.All))
		mt.SetString("cpu", lua.Box(m.CPU))
		mt.SetString("mem", lua.Box(m.Mem))
		mt.SetString("q", lua.Box(m.Queue))
		mt.SetString("req", lua.Box(m.Req))
		mt.SetString("load", lua.Box(m.Load))
	}
	g.SetString("MDSs", b.envMDSs)
}
