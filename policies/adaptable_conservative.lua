-- policy: adaptable_conservative
-- [metaload]
IWR + IRD
-- [mdsload]
MDSs[i]["all"]
-- [when]
local biggest = 0
for i = 1, #MDSs do
  biggest = max(MDSs[i]["load"], biggest)
end
myLoad = MDSs[whoami]["load"]
if myLoad > 100 and myLoad > total/2 and myLoad >= biggest then
-- [where]
local targetLoad = total/#MDSs
for i = 1, #MDSs do
  if i ~= whoami and MDSs[i]["load"] < targetLoad then
    targets[i] = targetLoad - MDSs[i]["load"]
  end
end
-- [howmuch]
{"half","small","big","big_small"}
