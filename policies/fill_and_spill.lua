-- policy: fill_and_spill
-- [metaload]
IRD + IWR
-- [mdsload]
MDSs[i]["all"]
-- [when]
local wait = RDState() or 2
go = 0
if MDSs[whoami]["cpu"] > 85 then
  if wait > 0 then WRState(wait-1)
  else WRState(2) go = 1 end
else WRState(2) end
if go == 1 and whoami < #MDSs then
-- [where]
targets[whoami+1] = MDSs[whoami]["load"]/4
-- [howmuch]
{"small_first","big_small","big_first"}
