-- policy: cephfs_original
-- [metaload]
IRD + 2*IWR + READDIR + 2*FETCH + 4*STORE
-- [mdsload]
0.8*MDSs[i]["auth"] + 0.2*MDSs[i]["all"] + MDSs[i]["req"] + 10*MDSs[i]["q"]
-- [when]
if total >= 1 and MDSs[whoami]["load"] > total/#MDSs then
-- [where]
local mean = total/#MDSs
local my = MDSs[whoami]["load"]
local excess = my - mean
if excess > 0 then
  local deficit = 0
  for i = 1, #MDSs do
    if i ~= whoami and MDSs[i]["load"] < mean then
      deficit = deficit + (mean - MDSs[i]["load"])
    end
  end
  if deficit > 0 then
    local scale = excess / deficit
    if scale > 1 then scale = 1 end
    for i = 1, #MDSs do
      if i ~= whoami and MDSs[i]["load"] < mean then
        targets[i] = (mean - MDSs[i]["load"]) * scale * 0.8
      end
    end
  end
end
-- [howmuch]
{"big_first"}
