-- policy: greedy_spill
-- [metaload]
IWR
-- [mdsload]
MDSs[i]["all"]
-- [when]
if whoami < #MDSs and MDSs[whoami]["load"] > .01 and
   MDSs[whoami+1]["load"] < .01 then
-- [where]
targets[whoami+1] = allmetaload/2
-- [howmuch]
{"half"}
