-- policy: greedy_spill_even
-- [metaload]
IWR
-- [mdsload]
MDSs[i]["all"]
-- [when]
t = math.floor((#MDSs - whoami + 1)/2) + whoami
if t > #MDSs then t = whoami end
while t ~= whoami and MDSs[t]["load"] >= .01 do t = t - 1 end
if t ~= whoami and MDSs[whoami]["load"] > .01 and
   MDSs[t]["load"] < .01 then
-- [where]
targets[t] = MDSs[whoami]["load"]/2
-- [howmuch]
{"half"}
