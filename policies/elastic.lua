-- policy: elastic
-- The when_elastic hook: the coordinator's grow/shrink vote, evaluated once
-- per elastic tick against per-rank queue depth and p99 latency (the
-- Prequal-style signals) plus the pool bounds. Returns > 0 to grow by one
-- rank, < 0 to shrink by one, 0 to hold; the coordinator adds its own
-- sustain counts and cooldown on top, so the thresholds here can stay
-- memoryless.
--
-- Tunables: a rank counts as hot past either threshold; the pool grows when
-- most ranks are hot and shrinks only when every rank is cold. WRstate
-- tracks consecutive cold ticks so a momentary lull between workload phases
-- (the compile untar -> link gap) does not flap the pool.
-- [when_elastic]
local grow_q, grow_lat = 32, 40
local shrink_q, shrink_lat = 4, 8
local cold_ticks_needed = 2

local hot, cold = 0, 0
for i = 1, active do
	local m = MDSs[i]
	if m["q"] > grow_q or m["lat"] > grow_lat then
		hot = hot + 1
	end
	if m["q"] < shrink_q and m["lat"] < shrink_lat then
		cold = cold + 1
	end
end

if hot * 2 > active and active < max_ranks then
	WRstate(0)
	return 1
end

if cold == active and active > min_ranks then
	local streak = (RDstate() or 0) + 1
	WRstate(streak)
	if streak >= cold_ticks_needed then
		WRstate(0)
		return -1
	end
	return 0
end

WRstate(0)
return 0
