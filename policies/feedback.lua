-- policy: feedback
-- [metaload]
IWR + IRD
-- [mdsload]
MDSs[i]["all"]
-- [when]
if total >= 1 and MDSs[whoami]["load"] > (total/#MDSs)*1.1 then
-- [where]
local frac = RDstate() or 0.1
local mean = total/#MDSs
local mine = MDSs[whoami]["load"]
local err = (mine - mean) / max(mine, 1)
frac = min(0.5, max(0.05, frac + 0.5*(err - frac)))
WRstate(frac)
local best, bestLoad = nil, nil
for i = 1, #MDSs do
  if i ~= whoami and (best == nil or MDSs[i]["load"] < bestLoad) then
    best, bestLoad = i, MDSs[i]["load"]
  end
end
if best ~= nil then
  targets[best] = mine * frac
end
-- [howmuch]
{"big_small","small_first","big_first"}
