-- policy: replicate
-- The when_replicate hook: the authoritative rank's per-candidate vote on
-- read replication, evaluated each balancer epoch against its hottest
-- directories. Returns > 0 to grant one more replica of the candidate,
-- < 0 to tear all of its replicas down, 0 to hold.
--
-- Replication is for read-dominated heat only: every write into a
-- replicated directory pays a revoke round trip before it may apply
-- (revoke-before-write), so replicating a write-heavy directory converts
-- each write into cluster-wide coordination. The hook therefore gates on
-- the read:write ratio as hard as on the heat itself.
--
-- Tunables: hot_factor is how far above the per-rank mean load a candidate
-- must be before it earns replicas; read_ratio is the minimum rd/wr skew.
-- The revoke side is deliberately laxer than the grant side (half the mean,
-- rd merely falling under 2x wr) so a candidate hovering at the threshold
-- does not flap grant/revoke every epoch.
-- [when_replicate]
local hot_factor = 2
local read_ratio = 4

local mean = total / active

if replicas > 0 and (heat < mean / 2 or wr * 2 > rd) then
	return -1
end

if replicas < max_replicas and heat > hot_factor * mean
	and rd > read_ratio * wr then
	return 1
end

return 0
