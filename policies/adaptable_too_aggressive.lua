-- policy: adaptable_too_aggressive
-- [metaload]
IWR + IRD
-- [mdsload]
MDSs[i]["all"]
-- [when]
if total > 0 and MDSs[whoami]["load"] > total/#MDSs then
-- [where]
local targetLoad = total/#MDSs
for i = 1, #MDSs do
  if i ~= whoami and MDSs[i]["load"] < targetLoad then
    targets[i] = targetLoad - MDSs[i]["load"]
  end
end
-- [howmuch]
{"half","small","big","big_small"}
