-- policy: coalesce_home
-- [metaload]
IWR + IRD
-- [mdsload]
MDSs[i]["all"]
-- [when]
if whoami == 1 then return false end
local calm = RDstate() or 0
if MDSs[whoami]["load"] < 10 and MDSs[whoami]["load"] > 0 then
  if calm >= 1 then WRstate(0) return true end
  WRstate(calm + 1)
else
  WRstate(0)
end
return false
-- [where]
targets[1] = MDSs[whoami]["load"]
-- [howmuch]
{"big_first","half"}
