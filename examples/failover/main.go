// Failover demonstrates the monitor-driven recovery path: a 3-MDS cluster
// with one standby loses the rank that owns a hot subtree mid-job. The
// monitor notices the missing beacons, fences the daemon, replays its
// journal onto a standby, and the clients — who resend timed-out requests —
// never see an error, only a latency bubble.
//
// Run with: go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"mantle/internal/cluster"
	"mantle/internal/core"
	"mantle/internal/mon"
	"mantle/internal/sim"
	"mantle/internal/workload"
)

func main() {
	cfg := cluster.DefaultConfig(3, 7)
	cfg.MDS.HeartbeatInterval = 500 * sim.Millisecond
	cfg.Client.RequestTimeout = 400 * sim.Millisecond
	cfg.ThroughputWindow = sim.Second

	c, err := cluster.New(cfg, cluster.LuaBalancers(core.DefaultPolicy()))
	if err != nil {
		log.Fatal(err)
	}
	c.EnableFailover(1 /* standby daemons */, mon.Config{
		CheckInterval: 250 * sim.Millisecond,
		Grace:         1500 * sim.Millisecond,
	})

	// Rank 1 owns the hot directory.
	if err := c.PrePopulate([]string{"/hot"}, true); err != nil {
		log.Fatal(err)
	}
	if err := c.PreAssign("/hot", 1); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		c.AddClient(workload.Creates(workload.CreateConfig{
			Dir: "/hot", Files: 15000, Prefix: fmt.Sprintf("c%d-", i),
		}))
	}

	// Kill rank 1 four seconds in.
	doomed := c.MDSs[1]
	c.Engine.Schedule(4*sim.Second, func() {
		fmt.Printf("t=%.1fs  injecting failure on mds.1\n", c.Engine.Now().Seconds())
		doomed.Crash()
	})

	res := c.Run(10 * sim.Minute)

	fmt.Printf("t=%.1fs  job done=%v, %d ops\n", res.Duration.Seconds(), res.AllDone, res.TotalOps)
	fmt.Printf("monitor: %d failure(s) declared, %d takeover(s)\n",
		c.Monitor.Failures, c.Monitor.Takeovers)
	timeouts, errs := 0, 0
	for i, cl := range c.Clients {
		timeouts += cl.Timeouts
		errs += res.ClientErrors[i]
	}
	fmt.Printf("clients: %d request timeouts during the outage, %d residual errors\n", timeouts, errs)
	fmt.Println("\nper-second cluster throughput (watch the outage bubble):")
	fmt.Print("  ")
	for _, p := range res.TotalSeries.Points {
		fmt.Printf("%5.0f ", p.V)
	}
	fmt.Println()
	if d, err := c.NS.Resolve("/hot"); err == nil {
		fmt.Printf("/hot holds %d files, served finally by the replacement mds.1\n", d.NumChildren())
	}
}
