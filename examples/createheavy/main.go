// Createheavy compares the paper's balancers head-to-head on the
// Figure 7 workload: four clients creating files in one shared directory on
// a 4-MDS cluster. The same storage system runs each strategy — exactly the
// methodological point of Mantle.
//
// Run with: go run ./examples/createheavy
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"mantle/internal/cluster"
	"mantle/internal/core"
	"mantle/internal/sim"
	"mantle/internal/workload"
)

const (
	numMDS         = 4
	numClients     = 4
	filesPerClient = 10000
)

func main() {
	policies := []core.Policy{
		{Name: "no_balancing", When: "false"}, // 1-MDS-equivalent baseline
		core.GreedySpillPolicy(),
		core.GreedySpillEvenPolicy(),
		core.FillAndSpillPolicy(),
		core.DefaultPolicy(),
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "policy\ttime\texports\tflushes\tper-MDS served")
	var baseline sim.Time
	for _, p := range policies {
		res := run(p)
		if baseline == 0 {
			baseline = res.Makespan
		}
		served := ""
		for _, cnt := range res.MDSCounters {
			served += fmt.Sprintf("%6d ", cnt.Served)
		}
		fmt.Fprintf(w, "%s\t%.2fs (%+.1f%%)\t%d\t%d\t%s\n",
			p.Name, res.Makespan.Seconds(),
			(float64(baseline)/float64(res.Makespan)-1)*100,
			res.TotalExports, res.TotalFlushes, served)
	}
	w.Flush()
	fmt.Println("\npositive % = faster than no balancing; the paper's claim is that")
	fmt.Println("modest spilling wins while aggressive distribution loses (Figure 8).")
}

func run(p core.Policy) *cluster.Result {
	cfg := cluster.DefaultConfig(numMDS, 7)
	cfg.MDS.SplitSize = numClients * filesPerClient / 8
	cfg.MDS.HeartbeatInterval = sim.Second
	cfg.MDS.RebalanceDelay = 100 * sim.Millisecond
	cfg.ThroughputWindow = sim.Second
	c, err := cluster.New(cfg, cluster.LuaBalancers(p))
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < numClients; i++ {
		c.AddClient(workload.SharedDirCreates("/shared", i, filesPerClient))
	}
	res := c.Run(30 * sim.Minute)
	if !res.AllDone {
		log.Fatalf("policy %s did not finish", p.Name)
	}
	return res
}
