// Compile drives the paper's Figure 1/9/10 workload: clients compiling a
// kernel-shaped source tree (untar → compile with hotspots → link flash
// crowd) under the Adaptable balancer, and renders the per-directory heat
// map plus per-MDS throughput.
//
// Run with: go run ./examples/compile
package main

import (
	"fmt"
	"log"

	"mantle/internal/cluster"
	"mantle/internal/core"
	"mantle/internal/sim"
	"mantle/internal/stats"
	"mantle/internal/workload"
)

func main() {
	const clients = 5
	cfg := cluster.DefaultConfig(3, 11)
	cfg.MDS.HeartbeatInterval = sim.Second
	cfg.ThroughputWindow = sim.Second

	c, err := cluster.New(cfg, cluster.LuaBalancers(core.AdaptablePolicy()))
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < clients; i++ {
		c.AddClient(workload.Compile(workload.CompileConfig{
			Root:        fmt.Sprintf("/src%d", i),
			FilesPerDir: 600,
			HeaderFiles: 300,
			Seed:        int64(100 + i),
		}))
	}

	// Sample per-directory heat for client 0's tree while the job runs
	// (the paper's Figure 1).
	keys := append([]string{"include"}, workload.DefaultCompileDirs...)
	hm := stats.NewHeatmap(keys)
	sampler := c.Engine.NewTicker(500*sim.Millisecond, 500*sim.Millisecond, func() {
		for _, d := range keys {
			heat := 0.0
			if n, err := c.NS.Resolve("/src0/" + d); err == nil {
				l := n.Load(c.Engine.Now())
				heat = l.IRD + l.IWR
			}
			hm.Set(d, heat)
		}
		hm.Snapshot(c.Engine.Now())
	})
	res := c.Run(30 * sim.Minute)
	sampler.Stop()

	fmt.Printf("compile of %d trees finished=%v in %.1fs; %d subtree exports\n",
		clients, res.AllDone, res.Makespan.Seconds(), res.TotalExports)
	fmt.Println("\nper-directory heat over time for /src0 (Figure 1):")
	fmt.Print(hm.Render())
	fmt.Println("\nper-MDS request rate over time:")
	for r, s := range res.Throughput {
		fmt.Printf("  mds.%d:", r)
		for _, pt := range s.Points {
			fmt.Printf(" %5.0f", pt.V)
		}
		fmt.Println()
	}
}
