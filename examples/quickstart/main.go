// Quickstart: build a simulated 2-MDS metadata cluster, inject the paper's
// Greedy Spill balancer (Listing 1), drive it with four clients creating
// files in one shared directory, and watch the load split across servers.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mantle/internal/cluster"
	"mantle/internal/core"
	"mantle/internal/sim"
	"mantle/internal/workload"
)

func main() {
	// A policy is five Lua scripts (empty hooks fall back to the
	// original CephFS behaviour). Greedy Spill ships half of everything
	// to the next MDS as soon as it is idle.
	policy := core.GreedySpillPolicy()

	// Always lint a policy before injecting it — a bad policy cannot
	// corrupt metadata (the mechanism is fixed) but it can refuse to
	// balance or waste migrations.
	if rep := core.Validate(policy); !rep.OK() {
		log.Fatalf("policy failed validation:\n%s", rep)
	}

	cfg := cluster.DefaultConfig(2 /* MDS ranks */, 42 /* seed */)
	cfg.MDS.SplitSize = 2000               // fragment the hot directory early
	cfg.MDS.HeartbeatInterval = sim.Second // balance every simulated second

	c, err := cluster.New(cfg, cluster.LuaBalancers(policy))
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		c.AddClient(workload.SharedDirCreates("/shared", i, 4000))
	}

	res := c.Run(10 * sim.Minute)

	fmt.Printf("done=%v in %.2fs of virtual time, %d ops at %.0f req/s\n",
		res.AllDone, res.Makespan.Seconds(), res.TotalOps, res.AggregateThroughput())
	fmt.Printf("the directory fragmented %d time(s) and %d dirfrags migrated\n",
		res.TotalSplits, res.TotalExports)
	for r, cnt := range res.MDSCounters {
		fmt.Printf("  mds.%d served %d requests\n", r, cnt.Served)
	}

	// The namespace is inspectable after the run.
	d, err := c.NS.Resolve("/shared")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("/shared has %d entries in %d fragments spread over %d rank(s)\n",
		d.NumChildren(), d.FragTree().NumLeaves(), d.RankSpread())
}
