// Custompolicy shows both ways to author a balancer for the MDS cluster:
//
//  1. injecting Lua (the Mantle way — runtime-changeable, sandboxed), and
//  2. implementing the balancer.Balancer interface in Go (compile-time).
//
// The custom Lua policy below is a "queue watcher": it migrates only when
// its request queue has been long for two consecutive ticks, remembering the
// streak with WRstate/RDstate, and ships load to the least-loaded rank.
//
// Run with: go run ./examples/custompolicy
package main

import (
	"fmt"
	"log"

	"mantle/internal/balancer"
	"mantle/internal/cluster"
	"mantle/internal/core"
	"mantle/internal/namespace"
	"mantle/internal/sim"
	"mantle/internal/workload"
)

// queueWatcher is the same policy expressed natively in Go.
type queueWatcher struct {
	threshold float64
}

func (queueWatcher) Name() string { return "queue_watcher_go" }

func (queueWatcher) MetaLoad(d namespace.CounterSnapshot) (float64, error) {
	return d.IWR + d.IRD, nil
}

func (queueWatcher) MDSLoad(rank namespace.Rank, e *balancer.Env) (float64, error) {
	return e.MDSs[rank].All + 5*e.MDSs[rank].Queue, nil
}

func (q queueWatcher) When(e *balancer.Env) (bool, error) {
	streak, _ := e.State.Read().(float64)
	if e.MDSs[e.WhoAmI].Queue > q.threshold {
		if streak >= 1 {
			e.State.Write(0.0)
			return true, nil
		}
		e.State.Write(streak + 1)
		return false, nil
	}
	e.State.Write(0.0)
	return false, nil
}

func (queueWatcher) Where(e *balancer.Env) (balancer.Targets, error) {
	best := namespace.Rank(-1)
	bestLoad := 0.0
	for r, m := range e.MDSs {
		if namespace.Rank(r) == e.WhoAmI {
			continue
		}
		if best < 0 || m.Load < bestLoad {
			best = namespace.Rank(r)
			bestLoad = m.Load
		}
	}
	if best < 0 {
		return nil, nil
	}
	return balancer.Targets{best: e.MDSs[e.WhoAmI].Load / 3}, nil
}

func (queueWatcher) HowMuch(e *balancer.Env) ([]string, error) {
	return []string{"big_small", "small_first"}, nil
}

// luaQueueWatcher is the identical policy as an injectable script.
var luaQueueWatcher = core.Policy{
	Name:     "queue_watcher_lua",
	MetaLoad: `IWR + IRD`,
	MDSLoad:  `MDSs[i]["all"] + 5*MDSs[i]["q"]`,
	When: `
local streak = RDstate() or 0
if MDSs[whoami]["q"] > 2 then
  if streak >= 1 then WRstate(0) return true end
  WRstate(streak + 1)
else
  WRstate(0)
end
return false`,
	Where: `
local best, bestLoad = nil, nil
for i = 1, #MDSs do
  if i ~= whoami and (best == nil or MDSs[i]["load"] < bestLoad) then
    best, bestLoad = i, MDSs[i]["load"]
  end
end
if best ~= nil then
  targets[best] = MDSs[whoami]["load"]/3
end`,
	HowMuch: `{"big_small","small_first"}`,
}

func main() {
	// Lint the Lua policy first, as always.
	if rep := core.Validate(luaQueueWatcher); !rep.OK() {
		log.Fatalf("lua policy invalid:\n%s", rep)
	}

	factories := map[string]cluster.BalancerFactory{
		"queue_watcher_lua": cluster.LuaBalancers(luaQueueWatcher),
		"queue_watcher_go": cluster.GoBalancers(func() balancer.Balancer {
			return queueWatcher{threshold: 2}
		}),
	}
	for _, name := range []string{"queue_watcher_lua", "queue_watcher_go"} {
		cfg := cluster.DefaultConfig(3, 21)
		cfg.MDS.HeartbeatInterval = sim.Second
		c, err := cluster.New(cfg, factories[name])
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			c.AddClient(workload.SeparateDirCreates("", i, 8000))
		}
		res := c.Run(30 * sim.Minute)
		fmt.Printf("%-18s done=%v makespan=%.2fs exports=%d served=",
			name, res.AllDone, res.Makespan.Seconds(), res.TotalExports)
		for _, cnt := range res.MDSCounters {
			fmt.Printf("%d ", cnt.Served)
		}
		fmt.Println()
	}
	fmt.Println("\nsame policy, two implementations — the mechanism never changed.")
}
