package mantle

import (
	"testing"

	"mantle/internal/balancer"
	"mantle/internal/cluster"
	"mantle/internal/core"
	"mantle/internal/experiments"
	"mantle/internal/lua"
	"mantle/internal/namespace"
	"mantle/internal/sim"
	"mantle/internal/workload"
)

// Each paper table/figure has a benchmark that regenerates it at a reduced
// scale and reports the headline quantity as a custom metric, so
// `go test -bench=.` doubles as a quick reproduction sweep. Shape checks are
// asserted (a failing reproduction fails the bench).

func benchOpts() experiments.Options {
	return experiments.Options{Seed: 1, Scale: 0.05}
}

func runFig(b *testing.B, id string) *experiments.Report {
	b.Helper()
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.Run(id, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Pass() {
			b.Fatalf("%s shape checks failed:\n%s", id, rep)
		}
	}
	passed := 0
	for _, c := range rep.Checks {
		if c.Pass {
			passed++
		}
	}
	b.ReportMetric(float64(passed), "checks")
	return rep
}

// BenchmarkFig1Heatmap regenerates Figure 1 (hotspot heat map).
func BenchmarkFig1Heatmap(b *testing.B) { runFig(b, "fig1") }

// BenchmarkFig3Locality regenerates Figure 3 (locality vs distribution).
func BenchmarkFig3Locality(b *testing.B) { runFig(b, "fig3") }

// BenchmarkFig4Reproducibility regenerates Figure 4 (balancer variance).
func BenchmarkFig4Reproducibility(b *testing.B) { runFig(b, "fig4") }

// BenchmarkFig5Scaling regenerates Figure 5 (single-MDS capacity study).
func BenchmarkFig5Scaling(b *testing.B) { runFig(b, "fig5") }

// BenchmarkFig7SharedDir regenerates Figure 7 (balancers on a shared dir).
func BenchmarkFig7SharedDir(b *testing.B) { runFig(b, "fig7") }

// BenchmarkFig8Speedup regenerates Figure 8 (speedup vs #MDS).
func BenchmarkFig8Speedup(b *testing.B) { runFig(b, "fig8") }

// BenchmarkFig9Compile regenerates Figure 9 (compile speedups).
func BenchmarkFig9Compile(b *testing.B) { runFig(b, "fig9") }

// BenchmarkFig10FlashCrowd regenerates Figure 10 (flash crowds).
func BenchmarkFig10FlashCrowd(b *testing.B) { runFig(b, "fig10") }

// BenchmarkSessionCounts regenerates the §4.1 session measurements.
func BenchmarkSessionCounts(b *testing.B) { runFig(b, "sessions") }

// BenchmarkAblations runs the design-choice ablations from DESIGN.md.
func BenchmarkAblations(b *testing.B) { runFig(b, "ablation") }

// BenchmarkScaleStudy runs the §4.4 20-node robustness sweep.
func BenchmarkScaleStudy(b *testing.B) { runFig(b, "scale") }

// ---- substrate micro-benchmarks ----

// BenchmarkTable1CephFSPolicy measures the hard-coded Table 1 policy's
// decision cost (Go-native path).
func BenchmarkTable1CephFSPolicy(b *testing.B) {
	pol := balancer.NewCephFS()
	e := &balancer.Env{WhoAmI: 0, State: &balancer.MemState{}}
	for i := 0; i < 5; i++ {
		// Rank 0 holds the most load so Where computes real targets.
		e.MDSs = append(e.MDSs, balancer.MDSMetrics{Load: float64(10 * (5 - i)), Auth: 5, All: 8, Queue: 2, Req: 100})
		e.Total += float64(10 * (5 - i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pol.Where(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2MantleHooks measures a full Mantle decision round (the
// Table 2 environment marshalled into Lua, when + where + howmuch executed).
func BenchmarkTable2MantleHooks(b *testing.B) {
	lb, err := core.NewLuaBalancer(core.AdaptablePolicy(), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	e := &balancer.Env{WhoAmI: 0, State: &balancer.MemState{}}
	for i := 0; i < 5; i++ {
		e.MDSs = append(e.MDSs, balancer.MDSMetrics{Load: float64(10 * (5 - i)), All: float64(10 * (5 - i))})
		e.Total += float64(10 * (5 - i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ok, err := lb.When(e)
		if err != nil {
			b.Fatal(err)
		}
		if ok {
			if _, err := lb.Where(e); err != nil {
				b.Fatal(err)
			}
			if _, err := lb.HowMuch(e); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkLuaInterpreter measures raw script throughput (steps/op) for a
// balancer-shaped loop.
func BenchmarkLuaInterpreter(b *testing.B) {
	vm := lua.NewVM()
	chunk, err := lua.Compile("bench", `
		local total = 0
		for i = 1, 100 do
			total = total + i*i % 7
		end
		return total`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := vm.Run(chunk); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMDSCreateThroughput measures simulated metadata ops per wall
// second: one MDS, four clients, create-heavy.
func BenchmarkMDSCreateThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := cluster.DefaultConfig(1, int64(i+1))
		c, err := cluster.New(cfg, cluster.GoBalancers(func() balancer.Balancer {
			return balancer.NoBalancer{}
		}))
		if err != nil {
			b.Fatal(err)
		}
		for cl := 0; cl < 4; cl++ {
			c.AddClient(workload.SeparateDirCreates("", cl, 5000))
		}
		res := c.Run(10 * sim.Minute)
		if !res.AllDone {
			b.Fatal("did not finish")
		}
		b.ReportMetric(float64(res.TotalOps), "simops/op")
	}
}

// BenchmarkNamespaceOps measures raw namespace mutation cost.
func BenchmarkNamespaceOps(b *testing.B) {
	ns := namespace.New(10 * sim.Second)
	dir, err := ns.CreatePath("/bench", true)
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, 4096)
	for i := range names {
		names[i] = workloadName(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := names[i%len(names)]
		if i >= len(names) {
			ns.Remove(dir, name)
		}
		if _, err := ns.Create(dir, name, false); err != nil {
			b.Fatal(err)
		}
		ns.RecordOp(dir, name, namespace.OpIWR, sim.Time(i))
	}
}

func workloadName(i int) string {
	const digits = "0123456789abcdef"
	var buf [8]byte
	for p := 7; p >= 0; p-- {
		buf[p] = digits[i&0xf]
		i >>= 4
	}
	return string(buf[:])
}
