// Command mantle-trace emits workload traces in the replayable text format
// (one op per line). Pair it with `mantle-sim -workload trace -trace f` to
// replay, or post-process traces from other systems into the same format.
//
// With -flight it instead converts a balancer flight-recorder log (from
// `mantle-sim -telemetry`) into Chrome trace_event JSON on stdout, viewable
// in chrome://tracing or Perfetto.
//
// Usage:
//
//	mantle-trace -workload compile -files 500 -seed 3 > compile.trace
//	mantle-trace -workload shared -client 2 -files 10000 > client2.trace
//	mantle-trace -flight run_flight.jsonl > balancer_trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"mantle/internal/telemetry"
	"mantle/internal/workload"
)

func main() {
	var (
		wl        = flag.String("workload", "separate", "workload: separate | shared | compile | flashcrowd")
		files     = flag.Int("files", 10000, "files per client (creates) or per directory (compile)")
		client    = flag.Int("client", 0, "client index (names and tree roots)")
		seed      = flag.Int64("seed", 1, "random seed")
		bursts    = flag.Int("bursts", 2000, "ops for the flash-crowd workload")
		flightLog = flag.String("flight", "", "convert a flight-recorder JSONL log to Chrome trace JSON instead")
	)
	flag.Parse()

	if *flightLog != "" {
		if err := convertFlight(*flightLog); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var gen workload.Generator
	switch *wl {
	case "separate":
		gen = workload.SeparateDirCreates("", *client, *files)
	case "shared":
		gen = workload.SharedDirCreates("/shared", *client, *files)
	case "compile":
		gen = workload.Compile(workload.CompileConfig{
			Root:        fmt.Sprintf("/src%d", *client),
			FilesPerDir: *files,
			HeaderFiles: *files / 2,
			Seed:        *seed + int64(*client),
		})
	case "flashcrowd":
		gen = workload.FlashCrowd(workload.FlashCrowdConfig{
			Dir: "/hot", Files: *files, Bursts: *bursts, Seed: *seed,
		})
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}
	rec := &workload.Record{Inner: gen}
	for {
		if _, ok := rec.Next(); !ok {
			break
		}
	}
	if err := workload.WriteTrace(os.Stdout, rec.Ops); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// convertFlight renders a flight-recorder log as Chrome trace JSON on stdout.
func convertFlight(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	records, err := telemetry.ReadFlightLog(f)
	f.Close()
	if err != nil {
		return err
	}
	return telemetry.FlightTrace(records).WriteJSON(os.Stdout)
}
