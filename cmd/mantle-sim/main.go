// Command mantle-sim runs one simulated CephFS metadata cluster with a
// chosen balancing policy and workload, printing per-MDS throughput and a
// run summary. It is the interactive counterpart to mantle-bench: change the
// policy (built-in name or an injected Lua file) and watch the behaviour.
//
// Usage:
//
//	mantle-sim -mds 4 -clients 4 -workload shared -files 20000 -balancer greedy_spill
//	mantle-sim -mds 3 -clients 5 -workload compile -policy-file my_balancer.lua
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"mantle/internal/cluster"
	"mantle/internal/core"
	"mantle/internal/faults"
	"mantle/internal/mon"
	"mantle/internal/sim"
	"mantle/internal/telemetry"
	"mantle/internal/workload"
)

func main() {
	var (
		numMDS     = flag.Int("mds", 3, "number of metadata servers")
		clients    = flag.Int("clients", 4, "number of closed-loop clients")
		files      = flag.Int("files", 20000, "files per client (create workloads) or files per directory (compile)")
		wl         = flag.String("workload", "separate", "workload: separate | shared | compile | trace")
		traceFile  = flag.String("trace", "", "trace file to replay (workload=trace; each client replays a copy)")
		balName    = flag.String("balancer", "cephfs_original", "built-in policy: "+strings.Join(core.PolicyNames(), ", "))
		policy     = flag.String("policy-file", "", "inject a Lua policy file instead of a built-in (see docs for the section format)")
		seed       = flag.Int64("seed", 1, "random seed")
		duration   = flag.Duration("max-time", 0, "virtual time budget (0 = 1h)")
		hb         = flag.Duration("hb-interval", 0, "heartbeat/balancer interval (0 = 10s)")
		splitSize  = flag.Int("split-size", 0, "dirfrag split threshold (0 = 50000)")
		standbys   = flag.Int("standbys", 0, "standby MDS daemons (enables the monitor)")
		faultsFile = flag.String("faults", "", "JSON fault plan to inject (see docs/ROBUSTNESS.md for the schema)")
		crashRank  = flag.Int("crash-rank", -1, "rank to crash at -crash-at (requires -standbys or manual recovery)")
		crashAt    = flag.Duration("crash-at", 0, "virtual time of the injected crash")
		csvPrefix  = flag.String("csv", "", "write <prefix>_throughput.csv and <prefix>_clients.csv")
		telPrefix  = flag.String("telemetry", "", "enable telemetry; write <prefix>_metrics.{csv,jsonl}, <prefix>_trace.json, <prefix>_flight.jsonl")
		traceNet   = flag.Bool("trace-net", false, "include per-message network events in the trace (large; requires -telemetry)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		profileStop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	memProfilePath = *memProfile
	defer exitProfiles()

	p, err := pickPolicy(*balName, *policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(2)
	}
	// Lint the policy before injecting it, as §4.4 prescribes.
	if rep := core.Validate(p); !rep.OK() {
		fmt.Fprintf(os.Stderr, "refusing to inject unsafe policy:\n%s", rep)
		exit(2)
	}

	cfg := cluster.DefaultConfig(*numMDS, *seed)
	if *hb > 0 {
		cfg.MDS.HeartbeatInterval = sim.Time(hb.Microseconds())
		cfg.MDS.RebalanceDelay = cfg.MDS.HeartbeatInterval / 10
	}
	if *splitSize > 0 {
		cfg.MDS.SplitSize = *splitSize
	}
	cfg.ThroughputWindow = cfg.MDS.HeartbeatInterval

	c, err := cluster.New(cfg, cluster.LuaBalancers(p))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(2)
	}
	if *telPrefix != "" {
		c.EnableTelemetry(telemetry.Options{
			Metrics:        true,
			Trace:          true,
			TraceNet:       *traceNet,
			FlightRecorder: true,
		})
	}
	for i := 0; i < *clients; i++ {
		switch *wl {
		case "separate":
			c.AddClient(workload.SeparateDirCreates("", i, *files))
		case "shared":
			c.AddClient(workload.SharedDirCreates("/shared", i, *files))
		case "compile":
			c.AddClient(workload.Compile(workload.CompileConfig{
				Root:        fmt.Sprintf("/src%d", i),
				FilesPerDir: *files,
				HeaderFiles: *files / 2,
				Seed:        *seed + int64(i),
			}))
		case "trace":
			f, err := os.Open(*traceFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit(2)
			}
			gen, err := workload.ParseTrace(f)
			f.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit(2)
			}
			c.AddClient(gen)
		default:
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
			exit(2)
		}
	}

	if *standbys > 0 {
		mcfg := mon.DefaultConfig()
		mcfg.CheckInterval = cfg.MDS.HeartbeatInterval / 2
		mcfg.Grace = 3 * cfg.MDS.HeartbeatInterval
		c.EnableFailover(*standbys, mcfg)
	}
	if *faultsFile != "" {
		plan, err := faults.Load(*faultsFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(2)
		}
		if err := faults.Apply(c, plan); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(2)
		}
		name := plan.Name
		if name == "" {
			name = *faultsFile
		}
		fmt.Printf("fault plan %s: %d event(s), seed %d\n", name, len(plan.Events), plan.Seed)
	}
	if *crashRank >= 0 && *crashRank < *numMDS && *crashAt > 0 {
		doomed := c.MDSs[*crashRank]
		c.Engine.Schedule(sim.Time(crashAt.Microseconds()), func() {
			fmt.Printf("[t=%.1fs] crashing mds.%d\n", c.Engine.Now().Seconds(), doomed.Rank())
			doomed.Crash()
		})
	}

	budget := sim.Time(duration.Microseconds())
	if budget <= 0 {
		budget = sim.Minute * 60
	}
	res := c.Run(budget)

	fmt.Printf("policy %s on %d MDS, %d clients, %s workload (seed %d)\n",
		p.Name, *numMDS, *clients, *wl, *seed)
	fmt.Printf("finished: %v  makespan: %.2fs  total ops: %d (%.0f req/s aggregate)\n",
		res.AllDone, res.Makespan.Seconds(), res.TotalOps, res.AggregateThroughput())
	fmt.Printf("mean latency: %.3f ms\n", res.MeanLatencyMs())
	fmt.Printf("forwards: %d  exports: %d (%d inodes)  splits: %d  session flushes: %d  policy errors: %d\n",
		res.TotalForwards, res.TotalExports, res.TotalInodes, res.TotalSplits, res.TotalFlushes, res.PolicyErrors)
	if res.PolicyFallbacks+res.ExportAborts+res.ImportAborts+res.SubtreeReassigns != 0 || res.TotalGaveUp != 0 {
		fmt.Printf("robustness: %d policy fallback(s)  %d export abort(s)  %d import abort(s)  %d reassignment(s)  %d op(s) abandoned\n",
			res.PolicyFallbacks, res.ExportAborts, res.ImportAborts, res.SubtreeReassigns, res.TotalGaveUp)
	}
	if c.Monitor != nil {
		fmt.Printf("monitor: %d failure(s), %d takeover(s), down now: %v\n",
			c.Monitor.Failures, c.Monitor.Takeovers, c.Monitor.FailedRanks())
	}
	fmt.Println("per-MDS:")
	for r, cnt := range res.MDSCounters {
		fmt.Printf("  mds.%d served %8d  hits %8d  forwards %6d  exports %3d  imports %3d  sessions %d\n",
			r, cnt.Served, cnt.Hits, cnt.Forwards, cnt.Exports, cnt.Imports, res.MDSSessions[r])
	}
	fmt.Println("per-MDS throughput over time (req/s per window):")
	for r, s := range res.Throughput {
		fmt.Printf("  mds.%d:", r)
		for _, pt := range s.Points {
			fmt.Printf(" %5.0f", pt.V)
		}
		fmt.Println()
	}
	if *csvPrefix != "" {
		for name, write := range map[string]func(*os.File) error{
			*csvPrefix + "_throughput.csv": func(f *os.File) error { return res.WriteThroughputCSV(f) },
			*csvPrefix + "_clients.csv":    func(f *os.File) error { return res.WriteClientCSV(f) },
		} {
			f, err := os.Create(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit(1)
			}
			if err := write(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit(1)
			}
			f.Close()
			fmt.Println("wrote", name)
		}
	}
	if *telPrefix != "" {
		if err := writeTelemetry(c, *telPrefix); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
	}
	// Health gates: wedged migrations are a bug in the cluster (exit 3);
	// unmet client ops — hung or abandoned — are a failed run (exit 1).
	if wedged := c.WedgedMigrations(); wedged > 0 {
		fmt.Fprintf(os.Stderr, "FAIL: %d migration(s) wedged in flight at shutdown\n", wedged)
		exit(3)
	}
	if !res.AllDone || res.TotalGaveUp > 0 {
		fmt.Fprintf(os.Stderr, "FAIL: unmet ops (all done: %v, %d abandoned after retry budget)\n",
			res.AllDone, res.TotalGaveUp)
		exit(1)
	}
}

// Profile plumbing. os.Exit skips deferred calls, so every exit after the
// profilers start goes through exit(), which flushes them first.
var (
	memProfilePath string
	profileStop    func()
)

func exitProfiles() {
	if profileStop != nil {
		profileStop()
		profileStop = nil
	}
	if memProfilePath != "" {
		path := memProfilePath
		memProfilePath = ""
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		f.Close()
	}
}

func exit(code int) {
	exitProfiles()
	os.Exit(code)
}

// writeTelemetry exports every enabled telemetry artefact under the prefix.
func writeTelemetry(c *cluster.Cluster, prefix string) error {
	t := c.Tel
	type artefact struct {
		suffix string
		write  func(*os.File) error
	}
	var arts []artefact
	if t.Reg != nil {
		arts = append(arts,
			artefact{"_metrics.csv", func(f *os.File) error { return t.Reg.WriteCSV(f) }},
			artefact{"_metrics.jsonl", func(f *os.File) error { return t.Reg.WriteJSONL(f) }})
	}
	if t.Tracer != nil {
		arts = append(arts, artefact{"_trace.json", func(f *os.File) error { return t.Tracer.WriteJSON(f) }})
	}
	if t.Recorder != nil {
		arts = append(arts, artefact{"_flight.jsonl", func(f *os.File) error { return t.Recorder.WriteJSONL(f) }})
	}
	for _, a := range arts {
		f, err := os.Create(prefix + a.suffix)
		if err != nil {
			return err
		}
		if err := a.write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", prefix+a.suffix)
	}
	return nil
}

func pickPolicy(name, file string) (core.Policy, error) {
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return core.Policy{}, err
		}
		base := strings.TrimSuffix(filepath.Base(file), filepath.Ext(file))
		return core.ParsePolicyFile(base, string(data))
	}
	p, ok := core.Policies()[name]
	if !ok {
		return core.Policy{}, fmt.Errorf("unknown balancer %q (have: %s)", name, strings.Join(core.PolicyNames(), ", "))
	}
	return p, nil
}
