// Command mantle-bench regenerates the paper's tables and figures on the
// simulated cluster and prints paper-vs-measured shape checks.
//
// Usage:
//
//	mantle-bench -run fig7 -scale 0.25 -seed 3
//	mantle-bench -run all
package main

import (
	"flag"
	"fmt"
	"os"

	"mantle/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment id to run (or 'all'); one of: "+join(experiments.IDs()))
	seed := flag.Int64("seed", 1, "random seed")
	scale := flag.Float64("scale", 0.1, "workload scale relative to the paper (1.0 = 100k creates/client)")
	flag.Parse()

	opts := experiments.Options{Seed: *seed, Scale: *scale, Out: os.Stdout}
	fail := 0
	if *run == "all" {
		for _, rep := range experiments.RunAll(opts) {
			if !rep.Pass() {
				fail++
			}
		}
	} else {
		rep, err := experiments.Run(*run, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if !rep.Pass() {
			fail++
		}
	}
	if fail > 0 {
		fmt.Printf("\n%d experiment(s) had failing shape checks\n", fail)
		os.Exit(1)
	}
	fmt.Println("\nall shape checks passed")
}

func join(ids []string) string {
	out := ""
	for i, id := range ids {
		if i > 0 {
			out += ", "
		}
		out += id
	}
	return out
}
