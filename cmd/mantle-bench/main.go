// Command mantle-bench regenerates the paper's tables and figures on the
// simulated cluster and prints paper-vs-measured shape checks. It doubles as
// the repository's perf harness: -bench-json runs the hot-path
// micro-benchmarks and writes a machine-readable BENCH_<label>.json.
//
// Usage:
//
//	mantle-bench -run fig7 -scale 0.25 -seed 3
//	mantle-bench -run all -parallel 8
//	mantle-bench -bench-json baseline
//	mantle-bench -run all -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/pprof"
	"strings"

	"mantle/internal/experiments"
	"mantle/internal/perf"
)

func main() {
	run := flag.String("run", "all", "experiment id to run (or 'all'); one of: "+join(experiments.IDs()))
	seed := flag.Int64("seed", 1, "random seed")
	scale := flag.Float64("scale", 0.1, "workload scale relative to the paper (1.0 = 100k creates/client)")
	parallel := flag.Int("parallel", 1, "run 'all' experiments on N worker goroutines (output stays byte-identical to sequential)")
	benchJSON := flag.String("bench-json", "", "run the micro-benchmark harness and write BENCH_<label>.json instead of experiments")
	benchBaseline := flag.String("bench-baseline", "", "with -bench-json: compare against this committed BENCH_*.json and exit nonzero if any ns_per_op regresses past -bench-tolerance")
	benchHistory := flag.String("bench-history", "", "with -bench-json: comma-separated BENCH_*.json paths (globs allowed, chronological order); gate each benchmark against its fastest historical measurement and print the trend")
	benchTolerance := flag.Float64("bench-tolerance", 0.25, "allowed fractional ns_per_op regression vs -bench-baseline (0.25 = 25%)")
	benchHistoryTolerance := flag.Float64("bench-history-tolerance", 0.6, "allowed fractional ns_per_op regression vs each benchmark's fastest committed measurement (looser than -bench-tolerance: the historical best stacks every recording environment's luck)")
	benchGateSkip := flag.String("bench-gate-skip", "", "regexp of benchmark names exempt from both regression gates (still measured, recorded, and shown in the trend); for points whose wall time is documented load-dominated, e.g. drain-bound open-loop runs — see docs/PERFORMANCE.md")
	treeDepth := flag.Int("tree-depth", perf.DefaultScale().TreeDepth, "NamespaceScale benchmarks: directory nesting depth")
	treeWidth := flag.Int("tree-width", perf.DefaultScale().TreeWidth, "NamespaceScale benchmarks: directory fan-out at the bottom of the tree")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	perf.ScaleConfig = perf.Scale{TreeDepth: *treeDepth, TreeWidth: *treeWidth}

	memProfilePath = *memProfile
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cpuProfileStop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
		defer cpuProfileStop()
	}
	defer writeMemProfile(memProfilePath)

	if *benchJSON != "" {
		rep := perf.RunAll(*benchJSON)
		name := "BENCH_" + *benchJSON + ".json"
		f, err := os.Create(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(2)
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		f.Close()
		for _, b := range rep.Benchmarks {
			fmt.Printf("%-24s %12.0f ns/op %8d allocs/op %10d B/op", b.Name, b.NsPerOp, b.AllocsPerOp, b.BytesPerOp)
			if b.SimOpsPerSec > 0 {
				fmt.Printf(" %12.0f simops/sec", b.SimOpsPerSec)
			}
			fmt.Println()
		}
		fmt.Println("wrote", name)
		gated := rep
		if *benchGateSkip != "" {
			re, err := regexp.Compile(*benchGateSkip)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bad -bench-gate-skip:", err)
				exit(2)
			}
			var dropped []string
			gated, dropped = rep.WithoutBenchmarks(re)
			if len(dropped) > 0 {
				fmt.Printf("gates exempt %s (load-dominated wall time; see docs/PERFORMANCE.md)\n",
					strings.Join(dropped, ", "))
			}
		}
		if *benchBaseline != "" {
			bf, err := os.Open(*benchBaseline)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit(2)
			}
			base, err := perf.ReadReport(bf)
			bf.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit(2)
			}
			regs := perf.CompareReports(base, gated, *benchTolerance)
			if len(regs) > 0 {
				fmt.Printf("\n%d benchmark(s) regressed vs %s (tolerance %.0f%%):\n",
					len(regs), *benchBaseline, *benchTolerance*100)
				for _, r := range regs {
					fmt.Println(" ", r)
				}
				exit(1)
			}
			fmt.Printf("no ns_per_op regressions vs %s (tolerance %.0f%%)\n", *benchBaseline, *benchTolerance*100)
		}
		if *benchHistory != "" {
			history, err := readHistory(*benchHistory, name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit(2)
			}
			fmt.Printf("\ntrend across %d committed report(s):\n%s", len(history), perf.Trend(history, rep))
			regs := perf.CompareHistory(history, gated, *benchHistoryTolerance)
			if len(regs) > 0 {
				fmt.Printf("\n%d benchmark(s) regressed vs historical best (tolerance %.0f%%):\n",
					len(regs), *benchHistoryTolerance*100)
				for _, r := range regs {
					fmt.Println(" ", r)
				}
				exit(1)
			}
			fmt.Printf("no ns_per_op regressions vs historical best (tolerance %.0f%%)\n", *benchHistoryTolerance*100)
		}
		return
	}

	opts := experiments.Options{Seed: *seed, Scale: *scale, Out: os.Stdout}
	fail := 0
	if *run == "all" {
		reports, err := experiments.RunAllParallel(opts, *parallel)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(2)
		}
		for _, rep := range reports {
			if !rep.Pass() {
				fail++
			}
		}
	} else {
		rep, err := experiments.Run(*run, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(2)
		}
		if !rep.Pass() {
			fail++
		}
	}
	if fail > 0 {
		fmt.Printf("\n%d experiment(s) had failing shape checks\n", fail)
		exit(1)
	}
	fmt.Println("\nall shape checks passed")
}

// exit flushes the profiles (deferred writers don't run through os.Exit)
// before terminating with the given code.
func exit(code int) {
	if cpuProfileStop != nil {
		cpuProfileStop()
		cpuProfileStop = nil
	}
	writeMemProfile(memProfilePath)
	os.Exit(code)
}

// memProfilePath and cpuProfileStop hold profiling state for the early-exit
// path.
var (
	memProfilePath string
	cpuProfileStop func()
)

func writeMemProfile(path string) {
	if path == "" {
		return
	}
	memProfilePath = ""
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

// readHistory expands a comma-separated list of paths/globs into parsed
// reports, preserving the given order (lexical within a glob). The report
// just written this run (skip) is excluded so a BENCH_* glob cannot gate
// the run against itself.
func readHistory(spec, skip string) ([]perf.Report, error) {
	var out []perf.Report
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		paths, err := filepath.Glob(part)
		if err != nil {
			return nil, fmt.Errorf("bench-history %q: %w", part, err)
		}
		if len(paths) == 0 {
			return nil, fmt.Errorf("bench-history %q matched no files", part)
		}
		for _, p := range paths {
			if filepath.Clean(p) == filepath.Clean(skip) {
				continue
			}
			f, err := os.Open(p)
			if err != nil {
				return nil, err
			}
			rep, err := perf.ReadReport(f)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", p, err)
			}
			if rep.Label == "" {
				rep.Label = strings.TrimSuffix(strings.TrimPrefix(filepath.Base(p), "BENCH_"), ".json")
			}
			out = append(out, rep)
		}
	}
	return out, nil
}

func join(ids []string) string {
	out := ""
	for i, id := range ids {
		if i > 0 {
			out += ", "
		}
		out += id
	}
	return out
}
