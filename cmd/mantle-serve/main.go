// Command mantle-serve runs the live serving runtime: a concurrent MDS
// cluster (one actor goroutine per rank) under open-loop load on the wall
// clock, with the same Lua-programmable balancing the simulator exercises.
// It prints a latency/throughput/balancing summary and can enforce a p99
// SLO via exit code.
//
// Exit codes: 0 ok; 1 SLO violated; 2 usage/config error; 3 wedged drain or
// namespace invariant violation.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mantle/internal/balancer"
	"mantle/internal/core"
	"mantle/internal/elastic"
	"mantle/internal/faults"
	"mantle/internal/live"
	"mantle/internal/namespace"
	"mantle/internal/sim"
	"mantle/internal/workload"
)

func main() {
	ranks := flag.Int("ranks", 3, "number of MDS ranks")
	clients := flag.Int("clients", 16, "client identities load is spread across")
	rate := flag.Float64("rate", 5000, "aggregate open-loop arrival rate (ops/s)")
	duration := flag.Duration("duration", 10*time.Second, "load duration")
	policy := flag.String("policy", "greedy_spill", "balancer policy: builtin name or path to a .lua file")
	sloP99 := flag.Float64("slo-p99", 0, "p99 latency SLO in milliseconds (0 = no SLO)")
	seed := flag.Int64("seed", 1, "RNG seed")
	wl := flag.String("workload", "zipf", "workload: zipf | compile")
	dirs := flag.Int("dirs", 64, "zipf working-set directories")
	zipfS := flag.Float64("zipf-s", 1.1, "zipf skew (>1)")
	writeRatio := flag.Float64("write-ratio", 0.8, "fraction of ops that are creates (zipf)")
	hb := flag.Duration("hb-interval", time.Second, "heartbeat/balance interval")
	queue := flag.Int("queue", 256, "per-rank request mailbox depth (shed past it)")
	admit := flag.Int("admit", 128, "MDS queue admission bound")
	netLat := flag.Duration("net-latency", 150*time.Microsecond, "one-way message latency")
	netJit := flag.Duration("net-jitter", 30*time.Microsecond, "message latency jitter (+/-)")
	opTimeout := flag.Duration("op-timeout", 5*time.Second, "abandon an unanswered op after this long")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "shutdown quiesce bound")
	minRanks := flag.Int("min-ranks", 0, "elastic: never shrink below this many ranks (0 = elasticity off)")
	maxRanks := flag.Int("max-ranks", 0, "elastic: never grow past this many ranks (0 = elasticity off)")
	elasticPolicy := flag.String("elastic-policy", "", "when_elastic hook: path to a .lua policy file (default: the -policy file's when_elastic section, else the built-in thresholds)")
	flash := flag.Float64("flash", 1, "rate multiplier during the compile link phase (the flash crowd)")
	linkPasses := flag.Int("link-passes", 0, "compile workload: readdir sweeps in the link phase (0 = default 3)")
	idleTail := flag.Duration("idle-tail", 0, "hold the cluster at zero load this long after the stream ends (lets scale-in complete)")
	seedBounds := flag.Bool("seed-bounds", true, "pre-partition the zipf working set across the initial ranks (warm client mdsmap); false starts everything on rank 0")
	mutexProfile := flag.String("mutexprofile", "", "write a lock-contention profile to this file after the run")
	blockProfile := flag.String("blockprofile", "", "write a goroutine-blocking profile to this file after the run")
	chaosInterval := flag.Duration("chaos-interval", 0, "crash a live rank this often while load runs (0 = no fault injection)")
	chaosDown := flag.Duration("chaos-down", 300*time.Millisecond, "how long a chaos-crashed rank stays down before recovery")
	chaosKind := flag.String("chaos-kind", "crash", "chaos fault flavour: crash | partition (isolate the victim from peers and monitor, clients still reachable)")
	standbys := flag.Int("standbys", 0, "warm standby pool: a monitor-declared-failed rank is replaced after journal replay (enables the monitor)")
	monGrace := flag.Duration("mon-grace", 0, "declare a rank failed after this much beacon silence (0 with -standbys derives 4x heartbeat; >0 alone enables the monitor without takeover)")
	hbMode := flag.String("hb-mode", "allpairs", "load exchange: allpairs (every rank heartbeats every peer, O(ranks^2) msgs/interval) | aggregated (ranks report to the monitor, which disseminates a load map, O(ranks); enables the monitor)")
	loadStale := flag.Duration("load-stale", 0, "aggregated mode: age a silent rank's vector out of the load map after this long (0 = the monitor grace)")
	workers := flag.Int("workers", 0, "load-generator dispatcher goroutines (zipf workload; 0 = GOMAXPROCS capped at 8)")
	replication := flag.Bool("replication", false, "enable hot-dirfrag read replication (when_replicate hook) plus client-side replica routing and lookup coalescing")
	replicaMax := flag.Int("replica-max", 2, "max replicas per directory")
	replicaPolicy := flag.String("replica-policy", "", "when_replicate hook: path to a .lua policy file (default: the -policy file's when_replicate section, else the built-in heat thresholds)")
	hotDir := flag.Bool("hotdir", false, "zipf workload: concentrate -hot-frac of ops on one shared hot directory")
	hotFrac := flag.Float64("hot-frac", 0.9, "fraction of ops aimed at the hot directory (with -hotdir)")
	hotFiles := flag.Int("hot-files", 256, "files in the hot directory (with -hotdir)")
	faultsFile := flag.String("faults", "", "JSON fault plan file injected against the live runtime (same schema as mantle-sim -faults; endpoint -2 = the monitor)")
	flag.Parse()

	if *mutexProfile != "" {
		runtime.SetMutexProfileFraction(5)
	}
	if *blockProfile != "" {
		runtime.SetBlockProfileRate(100_000) // sample blocking events >= 100µs
	}

	p, err := pickPolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if rep := core.Validate(p); !rep.OK() {
		fmt.Fprintf(os.Stderr, "refusing to inject unsafe policy:\n%s", rep)
		os.Exit(2)
	}

	cfg := live.DefaultConfig(*ranks, *seed)
	cfg.Factory = func(namespace.Rank) (balancer.Balancer, error) {
		return core.NewLuaBalancer(p, core.Options{})
	}
	if *hb > 0 {
		cfg.MDS.HeartbeatInterval = sim.Time(hb.Microseconds())
		cfg.MDS.RebalanceDelay = cfg.MDS.HeartbeatInterval / 10
	}
	cfg.MailboxDepth = *queue
	cfg.AdmitQueue = *admit
	cfg.SeedBounds = *seedBounds
	cfg.Net.Latency = sim.Time(netLat.Microseconds())
	cfg.Net.Jitter = sim.Time(netJit.Microseconds())
	cfg.DrainTimeout = *drainTimeout
	cfg.Standbys = *standbys
	cfg.MonGrace = *monGrace
	switch *hbMode {
	case "allpairs":
	case "aggregated":
		cfg.HBAggregated = true
		cfg.LoadStale = *loadStale
	default:
		fmt.Fprintf(os.Stderr, "unknown -hb-mode %q (allpairs | aggregated)\n", *hbMode)
		os.Exit(2)
	}
	cfg.Load = live.LoadConfig{
		Clients:     *clients,
		Rate:        *rate,
		Duration:    *duration,
		Workload:    *wl,
		Dirs:        *dirs,
		ZipfS:       *zipfS,
		WriteRatio:  *writeRatio,
		OpTimeout:   *opTimeout,
		Seed:        *seed,
		FlashFactor: *flash,
		IdleTail:    *idleTail,
		Workers:     *workers,
		HotDir:      *hotDir,
		HotFrac:     *hotFrac,
		HotFiles:    *hotFiles,
	}
	if *replication {
		cfg.Replication = true
		cfg.ReplicaMax = *replicaMax
		cfg.ReplicaPolicy = p.WhenReplicate // "" falls back to the built-in hook
		if *replicaPolicy != "" {
			rp, err := pickPolicy(*replicaPolicy)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			if rp.WhenReplicate == "" {
				fmt.Fprintf(os.Stderr, "%s has no when_replicate section\n", *replicaPolicy)
				os.Exit(2)
			}
			cfg.ReplicaPolicy = rp.WhenReplicate
		}
	}
	if *wl == "compile" {
		cfg.Load.Compile = workload.CompileConfig{Root: "/build", Seed: *seed, LinkPasses: *linkPasses}
	}
	if *maxRanks > 0 {
		if *maxRanks < *ranks {
			fmt.Fprintf(os.Stderr, "-max-ranks %d below -ranks %d\n", *maxRanks, *ranks)
			os.Exit(2)
		}
		cfg.MaxRanks = *maxRanks
		cfg.MinRanks = *minRanks
		cfg.ElasticPolicy = p.WhenElastic // "" falls back to the built-in hook
		if *elasticPolicy != "" {
			ep, err := pickPolicy(*elasticPolicy)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			if ep.WhenElastic == "" {
				fmt.Fprintf(os.Stderr, "%s has no when_elastic section\n", *elasticPolicy)
				os.Exit(2)
			}
			cfg.ElasticPolicy = ep.WhenElastic
		}
	}

	rt, err := live.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if co := rt.Coordinator(); co != nil {
		co.OnEvent = func(e elastic.Event) {
			fmt.Printf("elastic: %s\n", e)
		}
		fmt.Printf("mantle-serve: elastic %d..%d ranks\n", cfg.MinRanks, cfg.MaxRanks)
	}
	if *standbys > 0 || *monGrace > 0 || cfg.HBAggregated {
		fmt.Printf("mantle-serve: monitor on (%d standbys, grace %v, hb-mode %s)\n", *standbys, *monGrace, *hbMode)
	}
	if *faultsFile != "" {
		plan, err := faults.Load(*faultsFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := rt.ApplyFaults(plan); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("mantle-serve: fault plan %q (%d events)\n", plan.Name, len(plan.Events))
	}
	if cfg.Replication {
		src := "built-in"
		if cfg.ReplicaPolicy != "" {
			src = "when_replicate"
		}
		fmt.Printf("mantle-serve: replication on (max %d replicas/dir, %s hook)\n", cfg.ReplicaMax, src)
	}
	wlDesc := *wl
	if *hotDir {
		wlDesc = fmt.Sprintf("%s, hotdir %.0f%%/%d files", *wl, *hotFrac*100, *hotFiles)
	}
	fmt.Printf("mantle-serve: %d ranks, policy %s, %v @ %.0f op/s (%s workload)\n",
		*ranks, p.Name, *duration, *rate, wlDesc)
	if *chaosKind != "crash" && *chaosKind != "partition" {
		fmt.Fprintf(os.Stderr, "unknown -chaos-kind %q\n", *chaosKind)
		os.Exit(2)
	}
	if *chaosInterval > 0 && *ranks > 1 {
		fmt.Printf("mantle-serve: %s chaos every %v (down %v)\n", *chaosKind, *chaosInterval, *chaosDown)
		go func() {
			// Inject only inside the arrival window so drain measures
			// recovery, not fresh damage. Victims cycle over ranks
			// 1..active-1, re-reading membership each round so elastically
			// grown ranks are targeted too (and a shrunk victim becomes a
			// no-op); the down time is clamped to the window so recovery
			// never lands after arrivals stop.
			until := time.Now().Add(*duration)
			victim := 1
			for time.Now().Before(until) {
				time.Sleep(*chaosInterval)
				if !time.Now().Before(until) {
					return
				}
				active := rt.ActiveRanks()
				if active < 2 {
					continue
				}
				if victim >= active {
					victim = 1
				}
				r := victim
				victim = 1 + victim%(active-1)
				down := *chaosDown
				if rem := time.Until(until); down > rem {
					down = rem
				}
				if *chaosKind == "partition" {
					rt.IsolateRank(r)
					time.Sleep(down)
					rt.HealRank(r)
				} else {
					rt.CrashRank(r)
					time.Sleep(down)
					rt.RecoverRank(r, nil)
				}
			}
		}()
	}
	rep, runErr := rt.Run()
	if rep != nil {
		rep.Write(os.Stdout)
	}
	writeProfile("mutex", *mutexProfile)
	writeProfile("block", *blockProfile)
	if runErr != nil {
		fmt.Fprintln(os.Stderr, runErr)
		os.Exit(3)
	}
	if *sloP99 > 0 {
		if rep.P99 > *sloP99 {
			fmt.Printf("SLO: p99 %.3fms > %.3fms — VIOLATED\n", rep.P99, *sloP99)
			os.Exit(1)
		}
		fmt.Printf("SLO: p99 %.3fms <= %.3fms — ok\n", rep.P99, *sloP99)
	}
}

// writeProfile dumps a named runtime profile ("mutex", "block") to path.
func writeProfile(kind, path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s profile: %v\n", kind, err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(kind).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "%s profile: %v\n", kind, err)
	}
}

// pickPolicy resolves a builtin policy name or a .lua file path.
func pickPolicy(nameOrPath string) (core.Policy, error) {
	if strings.ContainsAny(nameOrPath, "/.") {
		data, err := os.ReadFile(nameOrPath)
		if err != nil {
			return core.Policy{}, err
		}
		base := strings.TrimSuffix(filepath.Base(nameOrPath), filepath.Ext(nameOrPath))
		return core.ParsePolicyFile(base, string(data))
	}
	p, ok := core.Policies()[nameOrPath]
	if !ok {
		return core.Policy{}, fmt.Errorf("unknown policy %q (have: %s)", nameOrPath, strings.Join(core.PolicyNames(), ", "))
	}
	return p, nil
}
