// Command mantle-policy is the balancer-policy toolbox: it lists the
// built-in policies, shows them in the injectable file format, and — most
// importantly — checks a policy before it is injected into a running
// cluster, the safety tool §4.4 of the paper describes ("we wrote a
// simulator that checks the logic before injecting policies").
//
// It also replays a balancer flight-recorder log (from `mantle-sim
// -telemetry`) through an alternate policy: a what-if analysis showing, per
// recorded heartbeat, whether the other policy would have migrated, where,
// and how much — without rerunning the simulation.
//
// Usage:
//
//	mantle-policy list
//	mantle-policy show greedy_spill > gs.lua
//	mantle-policy check gs.lua
//	mantle-policy replay run_flight.jsonl fill_and_spill
//	mantle-policy replay run_flight.jsonl gs.lua
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mantle/internal/balancer"
	"mantle/internal/core"
	"mantle/internal/telemetry"
	"mantle/internal/telemetry/flight"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		for _, name := range core.PolicyNames() {
			fmt.Println(name)
		}
	case "show":
		if len(os.Args) != 3 {
			usage()
		}
		p, ok := core.Policies()[os.Args[2]]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown policy %q\n", os.Args[2])
			os.Exit(2)
		}
		fmt.Print(core.FormatPolicyFile(p))
	case "check":
		if len(os.Args) != 3 {
			usage()
		}
		data, err := os.ReadFile(os.Args[2])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		base := strings.TrimSuffix(filepath.Base(os.Args[2]), filepath.Ext(os.Args[2]))
		_, rep, err := core.CheckPolicyFile(base, string(data))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(rep.String())
		if !rep.OK() {
			os.Exit(1)
		}
	case "replay":
		if len(os.Args) != 4 {
			usage()
		}
		if err := replay(os.Args[2], os.Args[3]); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		usage()
	}
}

// loadPolicy resolves a policy argument: a .lua file on disk wins, otherwise
// a built-in name.
func loadPolicy(arg string) (core.Policy, error) {
	if data, err := os.ReadFile(arg); err == nil {
		base := strings.TrimSuffix(filepath.Base(arg), filepath.Ext(arg))
		return core.ParsePolicyFile(base, string(data))
	}
	if p, ok := core.Policies()[arg]; ok {
		return p, nil
	}
	return core.Policy{}, fmt.Errorf("policy %q is neither a readable file nor a built-in (have: %s)",
		arg, strings.Join(core.PolicyNames(), ", "))
}

// replay re-feeds a flight-recorder log through an alternate policy and
// prints the per-heartbeat decision diff.
func replay(logPath, policyArg string) error {
	f, err := os.Open(logPath)
	if err != nil {
		return err
	}
	records, err := telemetry.ReadFlightLog(f)
	f.Close()
	if err != nil {
		return err
	}
	if len(records) == 0 {
		return fmt.Errorf("%s holds no heartbeat records", logPath)
	}
	p, err := loadPolicy(policyArg)
	if err != nil {
		return err
	}
	if rep := core.Validate(p); !rep.OK() {
		return fmt.Errorf("refusing to replay unsafe policy:\n%s", rep)
	}
	outcomes, err := flight.Replay(records, func(int) (balancer.Balancer, error) {
		return core.NewLuaBalancer(p, core.Options{})
	})
	if err != nil {
		return err
	}
	fmt.Printf("replaying %d heartbeats from %s: %s (recorded) vs %s (alternate)\n",
		len(records), logPath, records[0].Policy, p.Name)
	var diffs, whenDiffs, targetDiffs, errs int
	for _, o := range outcomes {
		mark := " "
		if o.Differs() {
			mark = "*"
			diffs++
			if o.WhenDiffers() {
				whenDiffs++
			} else {
				targetDiffs++
			}
		}
		fmt.Printf("%s t=%8.2fs rank %d  recorded: %-28s  %s: %s",
			mark, float64(o.Rec.TUS)/1e6, o.Rec.Rank,
			verdict(o.Rec.When, o.Rec.Targets), p.Name, verdict(o.When, o.Targets))
		if len(o.Errors) > 0 {
			errs++
			fmt.Printf("  [hook error: %s]", o.Errors[0])
		}
		fmt.Println()
	}
	fmt.Printf("%d/%d heartbeats differ (%d when, %d targets), %d alternate-policy errors\n",
		diffs, len(outcomes), whenDiffs, targetDiffs, errs)
	return nil
}

// verdict renders one policy's decision compactly: "-" (no migration) or
// "-> 1:10.0 2:3.5" (destination rank:load pairs).
func verdict(when bool, targets []telemetry.Target) string {
	if !when {
		return "-"
	}
	if len(targets) == 0 {
		return "-> (none)"
	}
	var b strings.Builder
	b.WriteString("->")
	for _, t := range targets {
		fmt.Fprintf(&b, " %d:%.1f", t.Rank, t.Load)
	}
	return b.String()
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  mantle-policy list              list built-in policies
  mantle-policy show <name>       print a built-in policy as an injectable file
  mantle-policy check <file.lua>  lint a policy file against synthetic cluster states
  mantle-policy replay <flight.jsonl> <name|file.lua>
                                  what-if: re-run recorded heartbeats under another policy
`)
	os.Exit(2)
}
