// Command mantle-policy is the balancer-policy toolbox: it lists the
// built-in policies, shows them in the injectable file format, and — most
// importantly — checks a policy before it is injected into a running
// cluster, the safety tool §4.4 of the paper describes ("we wrote a
// simulator that checks the logic before injecting policies").
//
// Usage:
//
//	mantle-policy list
//	mantle-policy show greedy_spill > gs.lua
//	mantle-policy check gs.lua
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mantle/internal/core"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		for _, name := range core.PolicyNames() {
			fmt.Println(name)
		}
	case "show":
		if len(os.Args) != 3 {
			usage()
		}
		p, ok := core.Policies()[os.Args[2]]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown policy %q\n", os.Args[2])
			os.Exit(2)
		}
		fmt.Print(core.FormatPolicyFile(p))
	case "check":
		if len(os.Args) != 3 {
			usage()
		}
		data, err := os.ReadFile(os.Args[2])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		base := strings.TrimSuffix(filepath.Base(os.Args[2]), filepath.Ext(os.Args[2]))
		p, err := core.ParsePolicyFile(base, string(data))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep := core.Validate(p)
		fmt.Print(rep.String())
		if !rep.OK() {
			os.Exit(1)
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  mantle-policy list              list built-in policies
  mantle-policy show <name>       print a built-in policy as an injectable file
  mantle-policy check <file.lua>  lint a policy file against synthetic cluster states
`)
	os.Exit(2)
}
