// Package mantle is a from-scratch reproduction of "Mantle: A Programmable
// Metadata Load Balancer for the Ceph File System" (Sevilla et al., SC '15).
//
// The repository contains a deterministic discrete-event simulation of a
// CephFS-like metadata cluster — dynamic subtree partitioning, directory
// fragments, heartbeats, two-phase-commit migration, a RADOS-like object
// store — plus Mantle itself: a balancer whose load-calculation, when,
// where, and how-much decisions are injectable Lua scripts executed by an
// embedded sandboxed interpreter.
//
// Entry points:
//
//   - internal/cluster — build and run simulated clusters (library API)
//   - internal/core — the Mantle policy framework and the paper's policies
//   - cmd/mantle-sim — run one cluster interactively
//   - cmd/mantle-bench — regenerate every table and figure from the paper
//   - cmd/mantle-policy — lint balancer policies before injection
//   - examples/ — runnable walkthroughs
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results. The root-level benchmarks (bench_test.go)
// regenerate each figure under `go test -bench`.
package mantle
