module mantle

go 1.22
